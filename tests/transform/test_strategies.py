"""Unit tests for Strategy 3 (extended ranges), Strategy 4 (collection-phase
quantifiers), conjunction separation, and the transformation pipeline —
reproducing the paper's Examples 4.4-4.7 at the structural level."""

import pytest

from repro.calculus import builder as q
from repro.calculus.analysis import free_variables_of
from repro.calculus.ast import ALL, BoolConst, Comparison, SOME
from repro.config import StrategyOptions
from repro.errors import TransformError
from repro.transform.normalform import to_standard_form
from repro.transform.pipeline import prepare_query
from repro.transform.quantifier_pushdown import DerivedPredicate, plan_pushdowns
from repro.transform.range_extension import extend_ranges
from repro.transform.separation import can_separate, separate_conjunctions
from repro.calculus.typecheck import TypeChecker
from repro.workloads.queries import example_21, teaches_low_level
from repro.workloads.university import figure1_database


@pytest.fixture
def resolved_running_query(figure1):
    return TypeChecker.for_database(figure1).resolve(example_21())


class TestRangeExtension:
    """Example 4.5: extensions for e, p and c; one conjunction disappears."""

    def test_example_45_extensions(self, resolved_running_query):
        form = to_standard_form(resolved_running_query)
        result = extend_ranges(form)
        assert result.changed
        assert set(result.extensions) == {"e", "p", "c"}
        assert result.removed_conjunctions == 1
        assert len(result.standard_form.conjunctions) == 2

    def test_example_45_free_variable_range(self, resolved_running_query):
        result = extend_ranges(to_standard_form(resolved_running_query))
        binding = result.standard_form.selection.bindings[0]
        assert binding.var == "e"
        assert binding.range.is_extended()

    def test_example_45_universal_range_negates_the_disjunct(self, resolved_running_query):
        result = extend_ranges(to_standard_form(resolved_running_query))
        p_spec = next(s for s in result.standard_form.prefix if s.var == "p")
        assert p_spec.range.is_extended()
        restriction = p_spec.range.restriction
        assert isinstance(restriction, Comparison)
        assert restriction.op == "="          # pyear <> 1977 negated to pyear = 1977

    def test_timetable_range_is_not_extended(self, resolved_running_query):
        result = extend_ranges(to_standard_form(resolved_running_query))
        t_spec = next(s for s in result.standard_form.prefix if s.var == "t")
        assert not t_spec.range.is_extended()

    def test_no_extension_for_purely_dyadic_query(self, figure1):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.some("t", "timetable", q.eq(("t", "tenr"), ("e", "enr"))),
        )
        form = to_standard_form(TypeChecker.for_database(figure1).resolve(selection))
        assert not extend_ranges(form).changed

    def test_universal_multi_term_disjunct_needs_general_mode(self, figure1):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.all_(
                "p",
                "papers",
                q.or_(
                    q.and_(q.ne(("p", "pyear"), 1977), q.gt(("p", "penr"), 3)),
                    q.ne(("p", "penr"), ("e", "enr")),
                ),
            ),
        )
        form = to_standard_form(TypeChecker.for_database(figure1).resolve(selection))
        conservative = extend_ranges(form, general_extensions=False)
        general = extend_ranges(form, general_extensions=True)
        assert "p" not in conservative.extensions
        assert "p" in general.extensions

    def test_all_disjuncts_moved_leaves_false_matrix(self, figure1):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.all_("p", "papers", q.ne(("p", "pyear"), 1977)),
        )
        form = to_standard_form(TypeChecker.for_database(figure1).resolve(selection))
        result = extend_ranges(form)
        assert result.changed
        assert result.standard_form.matrix == BoolConst(False)


class TestQuantifierPushdown:
    """Examples 4.6 / 4.7: the whole prefix dissolves into value lists."""

    def test_example_47_pushes_everything(self, figure1, resolved_running_query):
        prepared = prepare_query(
            resolved_running_query, figure1, StrategyOptions(), resolve=False
        )
        assert prepared.prefix == ()
        derived = prepared.derived_predicates()
        assert len(derived) == 3
        assert {p.inner_var for p in derived} == {"c", "t", "p"}
        # p's pushdown retains its universal quantifier (the paper's extension
        # of the semi-join technique to ALL).
        p_pred = next(p for p in derived if p.inner_var == "p")
        assert p_pred.quantifier == ALL
        assert p_pred.outer_var == "e"

    def test_example_46_without_range_extension_p_is_not_pushable(
        self, figure1, resolved_running_query
    ):
        """Example 4.6: in the plain standard form p occurs in two conjunctions."""
        prepared = prepare_query(
            resolved_running_query,
            figure1,
            StrategyOptions.only(collection_phase_quantifiers=True),
            resolve=False,
        )
        remaining = [spec.var for spec in prepared.prefix]
        assert "p" in remaining

    def test_swapping_is_recorded(self, figure1, resolved_running_query):
        prepared = prepare_query(
            resolved_running_query, figure1, StrategyOptions(), resolve=False
        )
        # c can only become innermost by swapping with t (both existential).
        trace_text = prepared.trace.describe()
        assert "swapped" in trace_text

    def test_universal_in_two_conjunctions_is_not_pushed(self):
        e_term = q.eq(("e", "estatus"), "professor")
        conj1 = (e_term, q.ne(("p", "pyear"), 1977))
        conj2 = (e_term, q.ne(("p", "penr"), ("e", "enr")))
        prefix = to_standard_form(example_21()).prefix[:1]  # ALL p
        result = plan_pushdowns(prefix, (conj1, conj2))
        assert not result.changed

    def test_pushdown_shortcuts(self, figure1):
        seniority = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.all_("p", "papers", q.lt(("e", "enr"), ("p", "penr"))),
        )
        prepared = prepare_query(
            TypeChecker.for_database(figure1).resolve(seniority),
            figure1,
            StrategyOptions(),
            resolve=False,
        )
        derived = prepared.derived_predicates()
        assert len(derived) == 1
        assert derived[0].shortcut() == "minmax"

    def test_single_value_shortcut_detection(self):
        predicate = DerivedPredicate(
            outer_var="e",
            quantifier=ALL,
            inner_var="p",
            inner_range=q.range_("papers"),
            connecting=(q.eq(("e", "enr"), ("p", "penr")),),
        )
        assert predicate.shortcut() == "single-value"

    def test_no_shortcut_for_multiple_connecting_terms(self):
        predicate = DerivedPredicate(
            outer_var="e",
            quantifier=SOME,
            inner_var="t",
            inner_range=q.range_("timetable"),
            connecting=(
                q.eq(("e", "enr"), ("t", "tenr")),
                q.eq(("e", "enr"), ("t", "tcnr")),
            ),
        )
        assert predicate.shortcut() is None

    def test_variable_connecting_to_two_outer_variables_is_not_pushed(self):
        conj = (
            q.eq(("t", "tenr"), ("e", "enr")),
            q.eq(("t", "tcnr"), ("c", "cnr")),
        )
        from repro.calculus.analysis import QuantifierSpec

        prefix = (QuantifierSpec(SOME, "t", q.range_("timetable")),)
        result = plan_pushdowns(prefix, (conj,))
        assert not result.changed


class TestSeparation:
    def test_existential_query_is_separable(self, figure1):
        resolved = TypeChecker.for_database(figure1).resolve(
            q.selection(
                [("e", "ename")],
                [("e", "employees")],
                q.or_(
                    q.eq(("e", "estatus"), "professor"),
                    q.some("t", "timetable", q.eq(("t", "tenr"), ("e", "enr"))),
                ),
            )
        )
        form = to_standard_form(resolved)
        assert can_separate(form)
        result = separate_conjunctions(form)
        assert len(result) == 2
        # The sub-query for the purely monadic conjunction drops the quantifier.
        prefix_lengths = sorted(len(sub.prefix) for sub in result.subqueries)
        assert prefix_lengths == [0, 1]

    def test_universal_query_is_not_separable(self, resolved_running_query):
        form = to_standard_form(resolved_running_query)
        assert not can_separate(form)
        with pytest.raises(TransformError):
            separate_conjunctions(form)

    def test_single_conjunction_is_not_worth_separating(self, figure1):
        resolved = TypeChecker.for_database(figure1).resolve(teaches_low_level())
        assert not can_separate(to_standard_form(resolved))


class TestPipeline:
    def test_trace_lists_applied_steps(self, figure1, resolved_running_query):
        prepared = prepare_query(
            resolved_running_query, figure1, StrategyOptions(), resolve=False
        )
        names = prepared.trace.names()
        assert "standard form" in names
        assert "extended ranges (S3)" in names
        assert "collection-phase quantifiers (S4)" in names

    def test_disabled_strategies_do_not_appear_in_trace(self, figure1, resolved_running_query):
        prepared = prepare_query(
            resolved_running_query, figure1, StrategyOptions.none(), resolve=False
        )
        names = prepared.trace.names()
        assert "extended ranges (S3)" not in names
        assert "collection-phase quantifiers (S4)" not in names
        assert len(prepared.prefix) == 3

    def test_variables_order_free_then_prefix(self, figure1, resolved_running_query):
        prepared = prepare_query(
            resolved_running_query, figure1, StrategyOptions.none(), resolve=False
        )
        assert prepared.variables == ("e", "p", "c", "t")
        assert prepared.range_of("p").relation == "papers"
        with pytest.raises(TransformError):
            prepared.range_of("z")

    def test_empty_relation_adaptation_in_pipeline(self, resolved_running_query):
        database = figure1_database()
        database.relation("papers").clear()
        prepared = prepare_query(
            resolved_running_query, database, StrategyOptions(), resolve=False
        )
        assert "empty-relation adaptation" in prepared.trace.names()

    def test_constant_matrix_query(self, figure1):
        # With Strategy 3, the single universal disjunct moves into p's range
        # and the matrix collapses to the constant FALSE.
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.all_("p", "papers", q.ne(("p", "pyear"), 1977)),
        )
        prepared = prepare_query(selection, figure1, StrategyOptions())
        assert prepared.constant is False

    def test_constant_true_matrix_from_empty_relation(self, figure1):
        figure1.relation("papers").clear()
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.all_("p", "papers", q.ne(("p", "pyear"), 1977)),
        )
        prepared = prepare_query(selection, figure1, StrategyOptions())
        assert prepared.constant is True
