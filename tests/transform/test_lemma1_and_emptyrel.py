"""Unit tests for Lemma 1 and the runtime empty-relation adaptation (Example 2.2)."""

import pytest

from repro.calculus import builder as q
from repro.calculus.ast import ALL, And, BoolConst, Or, Quantified, SOME
from repro.errors import TransformError
from repro.transform.emptyrel import adapt_formula, adapt_selection
from repro.transform.lemma1 import distribute_into_quantifier, pull_quantifier_out, rule_name
from repro.workloads.queries import example_21
from repro.workloads.university import figure1_database


A = q.eq(("e", "estatus"), "professor")
B = q.ne(("p", "pyear"), 1977)


def some_p():
    return q.some("p", "papers", B)


def all_p():
    return q.all_("p", "papers", B)


class TestRuleTable:
    def test_rule_numbers_and_preconditions(self):
        assert rule_name("AND", SOME) == (1, False)
        assert rule_name("OR", SOME) == (2, True)
        assert rule_name("AND", ALL) == (3, True)
        assert rule_name("OR", ALL) == (4, False)


class TestDistributeIntoQuantifier:
    def test_rule1_and_some(self):
        result = distribute_into_quantifier(A, some_p(), "AND")
        assert result.rule == 1
        assert not result.requires_non_empty
        assert isinstance(result.formula, Quantified)
        assert result.formula.body == And(A, B)

    def test_rule2_or_some_non_empty(self):
        result = distribute_into_quantifier(A, some_p(), "OR", range_is_empty=lambda _: False)
        assert result.rule == 2
        assert result.formula.body == Or(A, B)

    def test_rule2_or_some_empty_range_collapses_to_outer(self):
        result = distribute_into_quantifier(A, some_p(), "OR", range_is_empty=lambda _: True)
        assert result.formula == A

    def test_rule3_and_all_empty_range_collapses_to_outer(self):
        result = distribute_into_quantifier(A, all_p(), "AND", range_is_empty=lambda _: True)
        assert result.rule == 3
        assert result.formula == A

    def test_rule4_or_all(self):
        result = distribute_into_quantifier(A, all_p(), "OR")
        assert result.rule == 4
        assert not result.requires_non_empty
        assert result.formula.body == Or(A, B)

    def test_conditional_rules_flagged_without_oracle(self):
        assert distribute_into_quantifier(A, some_p(), "OR").requires_non_empty
        assert distribute_into_quantifier(A, all_p(), "AND").requires_non_empty

    def test_outer_mentioning_bound_variable_rejected(self):
        outer = q.eq(("p", "pyear"), 1980)
        with pytest.raises(TransformError):
            distribute_into_quantifier(outer, some_p(), "AND")


class TestPullQuantifierOut:
    def test_pulls_some_out_of_and(self):
        result = pull_quantifier_out(And(A, some_p()))
        assert result is not None
        assert result.rule == 1
        assert isinstance(result.formula, Quantified)

    def test_pulls_all_out_of_or(self):
        result = pull_quantifier_out(Or(A, all_p()))
        assert result.rule == 4

    def test_empty_range_short_circuits(self):
        result = pull_quantifier_out(Or(A, some_p()), range_is_empty=lambda _: True)
        assert result.formula == A

    def test_non_matching_shapes_return_none(self):
        assert pull_quantifier_out(And(A, B)) is None
        assert pull_quantifier_out(A) is None
        three = And(A, B, some_p())
        assert pull_quantifier_out(three) is None

    def test_outer_mentioning_bound_variable_returns_none(self):
        outer = q.eq(("p", "pyear"), 1980)
        assert pull_quantifier_out(And(outer, some_p())) is None


class TestEmptyRangeAdaptation:
    def test_some_over_empty_range_becomes_false(self):
        adaptation = adapt_formula(some_p(), relation_is_empty=lambda name: True)
        assert adaptation.formula == BoolConst(False)
        assert adaptation.removed_quantifiers == ((SOME, "p", "papers"),)

    def test_all_over_empty_range_becomes_true(self):
        adaptation = adapt_formula(all_p(), relation_is_empty=lambda name: True)
        assert adaptation.formula == BoolConst(True)

    def test_enclosing_connectives_simplify(self):
        formula = q.and_(A, all_p())
        adaptation = adapt_formula(formula, relation_is_empty=lambda name: name == "papers")
        assert adaptation.formula == A

    def test_nothing_changes_when_ranges_are_non_empty(self):
        formula = q.and_(A, all_p())
        adaptation = adapt_formula(formula, relation_is_empty=lambda name: False)
        assert not adaptation.changed
        assert adaptation.formula == formula

    def test_example_22_adaptation(self):
        """With papers = [], the running query reduces to the professor test."""
        database = figure1_database()
        database.relation("papers").clear()
        selection = example_21()
        adapted, record = adapt_selection(selection, database)
        assert record.changed
        assert (ALL, "p", "papers") in record.removed_quantifiers
        # The remaining formula no longer mentions papers at all.
        from repro.calculus.analysis import relations_of

        assert "papers" not in relations_of(adapted)

    def test_adaptation_handles_extended_ranges(self):
        database = figure1_database()
        formula = q.some(
            "p",
            q.range_("papers", q.eq(("p", "pyear"), 1900)),  # matches nothing
            q.ne(("p", "penr"), 1),
        )
        # A OR (SOME p IN empty-extended-range ...) collapses to A (Lemma 1 rule 2).
        selection = q.selection([("e", "ename")], [("e", "employees")], q.or_(A, formula))
        adapted, record = adapt_selection(selection, database)
        assert record.changed
        assert adapted.formula == A
