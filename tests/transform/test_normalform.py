"""Unit tests for NNF / prenex / DNF and the standard form (Example 2.2)."""

import pytest

from repro.calculus import builder as q
from repro.calculus.analysis import (
    conjunctions_of,
    free_variables_of,
    is_dnf_matrix,
    is_prenex,
    is_quantifier_free,
    literals_of,
)
from repro.calculus.ast import ALL, And, Comparison, Not, Or, SOME, TRUE
from repro.transform.normalform import (
    to_disjunctive_normal_form,
    to_negation_normal_form,
    to_prenex_normal_form,
    to_standard_form,
)
from repro.workloads.queries import example_21


class TestNegationNormalForm:
    def test_negated_comparison_flips_operator(self):
        formula = q.not_(q.eq(("e", "enr"), 1))
        assert to_negation_normal_form(formula) == q.ne(("e", "enr"), 1)

    def test_double_negation(self):
        formula = q.not_(q.not_(q.lt(("e", "enr"), 5)))
        assert to_negation_normal_form(formula) == q.lt(("e", "enr"), 5)

    def test_de_morgan(self):
        a, b = q.eq(("e", "enr"), 1), q.eq(("e", "enr"), 2)
        nnf = to_negation_normal_form(q.not_(q.and_(a, b)))
        assert isinstance(nnf, Or)
        assert nnf.operands == (q.ne(("e", "enr"), 1), q.ne(("e", "enr"), 2))

    def test_negated_quantifiers_dualise(self):
        body = q.eq(("p", "pyear"), 1977)
        nnf = to_negation_normal_form(q.not_(q.some("p", "papers", body)))
        assert nnf.kind == ALL
        assert nnf.body == q.ne(("p", "pyear"), 1977)
        nnf = to_negation_normal_form(q.not_(q.all_("p", "papers", body)))
        assert nnf.kind == SOME

    def test_negated_constants(self):
        assert to_negation_normal_form(q.not_(TRUE)).value is False

    def test_result_contains_no_not_nodes(self):
        formula = q.not_(
            q.and_(
                q.or_(q.eq(("e", "enr"), 1), q.not_(q.eq(("e", "enr"), 2))),
                q.some("p", "papers", q.not_(q.eq(("p", "pyear"), 1977))),
            )
        )
        nnf = to_negation_normal_form(formula)
        assert not any(isinstance(node, Not) for node in nnf.walk())


class TestPrenexNormalForm:
    def test_quantifiers_are_pulled_out(self):
        formula = q.and_(
            q.eq(("e", "estatus"), "professor"),
            q.some("t", "timetable", q.eq(("t", "tenr"), ("e", "enr"))),
        )
        prenex = to_prenex_normal_form(formula)
        assert is_prenex(prenex)
        assert prenex.kind == SOME

    def test_example_22_prefix_order(self):
        prenex = to_prenex_normal_form(example_21().formula)
        assert is_prenex(prenex)
        kinds = []
        node = prenex
        while hasattr(node, "kind") and node.kind in (SOME, ALL):
            kinds.append((node.kind, node.var))
            node = node.body
        assert kinds == [(ALL, "p"), (SOME, "c"), (SOME, "t")]

    def test_colliding_bound_variables_are_renamed_apart(self):
        formula = q.and_(
            q.some("x", "r", q.eq(("x", "a"), 1)),
            q.some("x", "s", q.eq(("x", "c"), 2)),
        )
        prenex = to_prenex_normal_form(formula)
        assert prenex.var != prenex.body.var

    def test_bound_variable_colliding_with_free_variable_is_renamed(self):
        formula = q.and_(
            q.eq(("x", "a"), 1),
            q.some("x", "r", q.eq(("x", "a"), 2)),
        )
        prenex = to_prenex_normal_form(formula)
        assert prenex.var != "x"
        assert "x" in free_variables_of(prenex)


class TestDisjunctiveNormalForm:
    def test_distributes_and_over_or(self):
        a, b, c = q.eq(("x", "f"), 1), q.eq(("x", "f"), 2), q.eq(("x", "f"), 3)
        dnf = to_disjunctive_normal_form(q.and_(a, q.or_(b, c)))
        assert is_dnf_matrix(dnf)
        assert len(conjunctions_of(dnf)) == 2

    def test_true_short_circuits(self):
        a = q.eq(("x", "f"), 1)
        assert to_disjunctive_normal_form(q.or_(a, TRUE)) == TRUE

    def test_idempotent(self):
        a, b, c = q.eq(("x", "f"), 1), q.eq(("x", "f"), 2), q.eq(("x", "f"), 3)
        dnf = to_disjunctive_normal_form(q.and_(q.or_(a, b), c))
        assert to_disjunctive_normal_form(dnf) == dnf


class TestStandardForm:
    def test_example_22_structure(self):
        """The running query's standard form: ALL p SOME c SOME t, 3 conjunctions."""
        form = to_standard_form(example_21())
        assert [(s.kind, s.var) for s in form.prefix] == [
            (ALL, "p"),
            (SOME, "c"),
            (SOME, "t"),
        ]
        assert len(form.conjunctions) == 3
        assert is_dnf_matrix(form.matrix)
        # Every conjunction carries the professor test, as printed in Example 2.2.
        professor = q.eq(("e", "estatus"), "professor")
        for conjunction in form.conjunctions:
            assert professor in literals_of(conjunction)

    def test_to_formula_round_trips_prefix(self):
        form = to_standard_form(example_21())
        rebuilt = form.to_formula()
        assert is_prenex(rebuilt)
        assert to_standard_form(form.to_selection()).matrix == form.matrix

    def test_quantifier_free_query(self):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(("e", "estatus"), "professor")
        )
        form = to_standard_form(selection)
        assert form.prefix == ()
        assert isinstance(form.matrix, Comparison)
