"""Unit tests for scope and type checking of selections."""

import pytest

from repro.calculus import builder as q
from repro.calculus.ast import Const
from repro.calculus.typecheck import TypeChecker, resolve_selection
from repro.errors import ScopeError, TypeCheckError
from repro.types.scalar import EnumValue
from repro.workloads.queries import example_21


@pytest.fixture
def checker(figure1):
    return TypeChecker.for_database(figure1)


class TestResolution:
    def test_enum_labels_become_enum_values(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(("e", "estatus"), "professor")
        )
        resolved = checker.resolve(selection)
        constant = resolved.formula.right
        assert isinstance(constant, Const)
        assert isinstance(constant.value, EnumValue)
        assert constant.value.label == "professor"

    def test_running_query_resolves(self, checker):
        resolved = checker.resolve(example_21())
        assert resolved.free_variables == ("e",)

    def test_strings_padded_to_char_array(self, checker):
        selection = q.selection(
            [("e", "enr")], [("e", "employees")], q.eq(("e", "ename"), "Jarke")
        )
        resolved = checker.resolve(selection)
        assert resolved.formula.right.value == "Jarke".ljust(10)

    def test_extended_range_restrictions_are_resolved(self, checker):
        selection = q.selection(
            [("e", "ename")],
            [q.each("e", q.range_("employees", q.eq(("e", "estatus"), "professor")))],
            q.eq(("e", "enr"), 1),
        )
        resolved = checker.resolve(selection)
        assert isinstance(resolved.bindings[0].range.restriction.right.value, EnumValue)

    def test_constant_on_the_left_is_coerced(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq("professor", ("e", "estatus"))
        )
        resolved = checker.resolve(selection)
        assert isinstance(resolved.formula.left.value, EnumValue)

    def test_resolve_selection_helper(self, figure1):
        resolved = resolve_selection(example_21(), figure1)
        assert resolved.free_variables == ("e",)


class TestScopeErrors:
    def test_unknown_relation(self, checker):
        selection = q.selection([("e", "ename")], [("e", "faculty")], q.eq(("e", "enr"), 1))
        with pytest.raises(ScopeError):
            checker.check(selection)

    def test_unbound_variable(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(("x", "enr"), 1)
        )
        with pytest.raises(ScopeError):
            checker.check(selection)

    def test_quantifier_shadowing_rejected(self, checker):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.some("e", "papers", q.eq(("e", "pyear"), 1977)),
        )
        with pytest.raises(ScopeError):
            checker.check(selection)

    def test_unknown_quantified_relation(self, checker):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.some("p", "preprints", q.eq(("p", "pyear"), 1977)),
        )
        with pytest.raises(ScopeError):
            checker.check(selection)


class TestTypeErrors:
    def test_unknown_component(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(("e", "salary"), 5)
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)

    def test_unknown_projected_component(self, checker):
        selection = q.selection(
            [("e", "salary")], [("e", "employees")], q.eq(("e", "enr"), 1)
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)

    def test_incomparable_component_types(self, checker):
        selection = q.selection(
            [("e", "ename")],
            [("e", "employees")],
            q.eq(("e", "estatus"), ("e", "enr")),
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)

    def test_constant_of_wrong_type(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(("e", "enr"), "notanumber")
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)

    def test_two_constant_comparison_rejected(self, checker):
        selection = q.selection(
            [("e", "ename")], [("e", "employees")], q.eq(1, 2)
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)

    def test_enum_comparisons_across_types_rejected(self, checker):
        selection = q.selection(
            [("c", "ctitle")],
            [("c", "courses")],
            q.eq(("c", "clevel"), "professor"),
        )
        with pytest.raises(TypeCheckError):
            checker.check(selection)
