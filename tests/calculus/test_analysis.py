"""Unit tests for formula analysis (occurrence counts, prenex/DNF queries)."""

import pytest

from repro.calculus import builder as q
from repro.calculus.analysis import (
    bound_variables_of,
    comparisons_of,
    conjunctions_containing,
    conjunctions_of,
    dyadic_terms_over,
    formula_depth,
    formula_size,
    free_variables_of,
    has_universal_quantifier,
    is_dnf_matrix,
    is_prenex,
    is_quantifier_free,
    literals_of,
    matrix_of,
    monadic_terms_over,
    quantifier_prefix,
    relations_of,
    variable_occurrence_counts,
    variables_of,
)
from repro.calculus.ast import TRUE
from repro.errors import CalculusError
from repro.workloads.queries import example_21


@pytest.fixture
def running_query():
    return example_21()


class TestVariableQueries:
    def test_variables_of_running_query(self, running_query):
        assert variables_of(running_query.formula) == {"e", "p", "c", "t"}

    def test_free_variables_of_running_query(self, running_query):
        assert free_variables_of(running_query.formula) == {"e"}

    def test_bound_variables(self, running_query):
        assert bound_variables_of(running_query.formula) == {"p", "c", "t"}

    def test_free_variables_respect_quantifier_scope(self):
        formula = q.some("x", "r", q.eq(("x", "a"), ("y", "b")))
        assert free_variables_of(formula) == {"y"}

    def test_relations_of(self, running_query):
        assert relations_of(running_query) == {"employees", "papers", "courses", "timetable"}


class TestAtomQueries:
    def test_comparisons_of_counts_join_terms(self, running_query):
        assert len(comparisons_of(running_query.formula)) == 6

    def test_comparisons_include_range_restrictions(self):
        formula = q.some(
            "p", q.range_("papers", q.eq(("p", "pyear"), 1977)), q.ne(("p", "penr"), 3)
        )
        assert len(comparisons_of(formula)) == 2

    def test_monadic_and_dyadic_terms_over(self, running_query):
        assert len(monadic_terms_over(running_query.formula, "e")) == 1
        assert len(dyadic_terms_over(running_query.formula, "e")) == 2
        assert len(monadic_terms_over(running_query.formula, "c")) == 1


class TestPrenexQueries:
    def test_running_query_is_not_prenex(self, running_query):
        assert not is_prenex(running_query.formula)
        assert not is_quantifier_free(running_query.formula)

    def test_quantifier_prefix_of_prenex_formula(self):
        formula = q.all_("p", "papers", q.some("c", "courses", q.eq(("p", "penr"), ("c", "cnr"))))
        prefix, matrix = quantifier_prefix(formula)
        assert [(s.kind, s.var) for s in prefix] == [("ALL", "p"), ("SOME", "c")]
        assert is_quantifier_free(matrix)
        assert is_prenex(formula)
        assert matrix_of(formula) == matrix

    def test_matrix_of_non_prenex_raises(self):
        formula = q.and_(q.some("p", "papers", TRUE), q.eq(("e", "enr"), 1))
        with pytest.raises(CalculusError):
            matrix_of(formula)

    def test_has_universal_quantifier(self, running_query):
        assert has_universal_quantifier(running_query.formula)
        assert not has_universal_quantifier(q.some("p", "papers", TRUE))


class TestDnfQueries:
    def make_matrix(self):
        a = q.eq(("e", "estatus"), "professor")
        b = q.ne(("p", "pyear"), 1977)
        c = q.eq(("t", "tenr"), ("e", "enr"))
        return q.or_(q.and_(a, b), q.and_(a, c)), (a, b, c)

    def test_conjunctions_and_literals(self):
        matrix, (a, b, c) = self.make_matrix()
        assert len(conjunctions_of(matrix)) == 2
        assert literals_of(conjunctions_of(matrix)[0]) == [a, b]

    def test_is_dnf_matrix(self):
        matrix, _ = self.make_matrix()
        assert is_dnf_matrix(matrix)
        not_dnf = q.and_(q.or_(q.eq(("e", "enr"), 1), q.eq(("e", "enr"), 2)), q.eq(("e", "enr"), 3))
        assert not is_dnf_matrix(not_dnf)

    def test_single_conjunction_matrix(self):
        single = q.and_(q.eq(("e", "enr"), 1), q.eq(("e", "enr"), 2))
        assert conjunctions_of(single) == [single]
        assert is_dnf_matrix(single)

    def test_conjunctions_containing(self):
        matrix, _ = self.make_matrix()
        assert len(conjunctions_containing(matrix, "p")) == 1
        assert len(conjunctions_containing(matrix, "e")) == 2
        assert len(conjunctions_containing(matrix, "z")) == 0

    def test_variable_occurrence_counts(self):
        matrix, _ = self.make_matrix()
        counts = variable_occurrence_counts(matrix)
        assert counts == {"e": 2, "p": 1, "t": 1}


class TestMetrics:
    def test_size_and_depth(self, running_query):
        assert formula_size(running_query.formula) > 5
        assert formula_depth(running_query.formula) >= 4
        atom = q.eq(("e", "enr"), 1)
        assert formula_size(atom) == 1
        assert formula_depth(atom) == 1
