"""Unit tests for the calculus AST and the builder API."""

import pytest

from repro.calculus import builder as q
from repro.calculus.ast import (
    ALL,
    FALSE,
    SOME,
    TRUE,
    And,
    Comparison,
    Const,
    FieldRef,
    Not,
    Or,
    OutputColumn,
    Quantified,
    RangeExpr,
    Selection,
)
from repro.errors import CalculusError


class TestComparisons:
    def test_monadic_detection(self):
        term = q.eq(("e", "estatus"), "professor")
        assert term.is_monadic()
        assert not term.is_dyadic()
        assert term.variables() == ("e",)

    def test_dyadic_detection(self):
        term = q.eq(("e", "enr"), ("t", "tenr"))
        assert term.is_dyadic()
        assert term.variables() == ("e", "t")

    def test_mentions_and_operand_for(self):
        term = q.eq(("e", "enr"), ("t", "tenr"))
        assert term.mentions("t")
        assert not term.mentions("p")
        assert term.operand_for("t") == FieldRef("t", "tenr")
        with pytest.raises(CalculusError):
            term.operand_for("p")

    def test_invalid_operator_raises(self):
        with pytest.raises(CalculusError):
            Comparison(Const(1), "==", Const(2))

    def test_constant_only_comparison_has_no_variables(self):
        assert Comparison(Const(1), "=", Const(1)).variables() == ()


class TestConnectives:
    def test_and_flattens(self):
        a, b, c = q.eq(("x", "f"), 1), q.eq(("x", "f"), 2), q.eq(("x", "f"), 3)
        assert And(And(a, b), c).operands == (a, b, c)

    def test_or_flattens(self):
        a, b, c = q.eq(("x", "f"), 1), q.eq(("x", "f"), 2), q.eq(("x", "f"), 3)
        assert Or(a, Or(b, c)).operands == (a, b, c)

    def test_empty_connectives_raise(self):
        with pytest.raises(CalculusError):
            And()
        with pytest.raises(CalculusError):
            Or()

    def test_builder_single_operand_passthrough(self):
        a = q.eq(("x", "f"), 1)
        assert q.and_(a) is a
        assert q.or_(a) is a

    def test_children_and_walk(self):
        a, b = q.eq(("x", "f"), 1), q.eq(("x", "f"), 2)
        formula = q.and_(a, q.not_(b))
        nodes = list(formula.walk())
        assert a in nodes and b in nodes
        assert any(isinstance(n, Not) for n in nodes)

    def test_structural_equality(self):
        build = lambda: q.and_(q.eq(("x", "f"), 1), q.ne(("x", "f"), 2))
        assert build() == build()
        assert hash(build()) == hash(build())


class TestQuantifiersAndRanges:
    def test_quantifier_kinds(self):
        body = q.eq(("p", "pyear"), 1977)
        assert q.some("p", "papers", body).is_existential()
        assert q.all_("p", "papers", body).is_universal()

    def test_invalid_kind_raises(self):
        with pytest.raises(CalculusError):
            Quantified("EXISTS", "p", RangeExpr("papers"), TRUE)

    def test_range_extension(self):
        base = RangeExpr("papers")
        assert not base.is_extended()
        extended = base.extend(q.eq(("p", "pyear"), 1977))
        assert extended.is_extended()
        further = extended.extend(q.ne(("p", "penr"), 3))
        assert isinstance(further.restriction, And)

    def test_builder_range(self):
        r = q.range_("courses", q.le(("c", "clevel"), "sophomore"))
        assert r.relation == "courses"
        assert r.is_extended()

    def test_bool_constants(self):
        assert TRUE.value and not FALSE.value
        assert repr(TRUE) == "TRUE"


class TestSelection:
    def test_construction_via_builder(self):
        selection = q.selection(
            columns=[("e", "ename")],
            each=[("e", "employees")],
            where=q.eq(("e", "estatus"), "professor"),
        )
        assert selection.free_variables == ("e",)
        assert selection.columns[0] == OutputColumn("e", "ename")
        assert selection.binding_for("e").range.relation == "employees"

    def test_alias_column(self):
        selection = q.selection(
            columns=[q.column("e", "ename", alias="name")],
            each=[("e", "employees")],
            where=TRUE,
        )
        assert selection.columns[0].name == "name"

    def test_requires_columns_and_bindings(self):
        with pytest.raises(CalculusError):
            Selection([], [("e", "employees")], TRUE)
        with pytest.raises(CalculusError):
            Selection([("e", "ename")], [], TRUE)

    def test_rejects_duplicate_free_variables(self):
        with pytest.raises(CalculusError):
            Selection([("e", "ename")], [("e", "employees"), ("e", "papers")], TRUE)

    def test_rejects_columns_over_unbound_variables(self):
        with pytest.raises(CalculusError):
            Selection([("x", "ename")], [("e", "employees")], TRUE)

    def test_binding_for_unknown_raises(self):
        selection = q.selection([("e", "ename")], [("e", "employees")], TRUE)
        with pytest.raises(CalculusError):
            selection.binding_for("z")

    def test_with_formula_and_with_bindings(self):
        selection = q.selection([("e", "ename")], [("e", "employees")], TRUE)
        updated = selection.with_formula(FALSE)
        assert updated.formula is FALSE
        assert updated.columns == selection.columns
        rebound = selection.with_bindings([q.each("e", q.range_("employees", TRUE))])
        assert rebound.bindings[0].range.is_extended()

    def test_multiple_free_variables(self):
        selection = q.selection(
            columns=[("e", "ename"), ("c", "ctitle")],
            each=[("e", "employees"), ("c", "courses")],
            where=TRUE,
        )
        assert selection.free_variables == ("e", "c")
