"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import QueryEngine, StrategyOptions, build_university_database
from repro.relational.database import Database
from repro.workloads.university import figure1_database


@pytest.fixture
def figure1() -> Database:
    """The small Figure 1 database (8 employees, 12 papers, 6 courses, 10 entries)."""
    return figure1_database()


@pytest.fixture
def university_scale2() -> Database:
    """A scale-2 university database for slightly larger integration tests."""
    return build_university_database(scale=2)


@pytest.fixture
def engine(figure1: Database) -> QueryEngine:
    """A query engine with all strategies enabled over the Figure 1 database."""
    return QueryEngine(figure1, StrategyOptions.all_strategies())


@pytest.fixture
def unoptimized_engine(figure1: Database) -> QueryEngine:
    """A query engine with no strategies enabled over the Figure 1 database."""
    return QueryEngine(figure1, StrategyOptions.none())


ALL_STRATEGY_CONFIGS = {
    "all": StrategyOptions.all_strategies(),
    "none": StrategyOptions.none(),
    "s1": StrategyOptions.only(parallel_collection=True),
    "s1+s2": StrategyOptions.only(parallel_collection=True, one_step_nested=True),
    "s3": StrategyOptions.only(extended_ranges=True),
    "s4": StrategyOptions.only(collection_phase_quantifiers=True),
    "s3+s4": StrategyOptions.only(
        extended_ranges=True, collection_phase_quantifiers=True
    ),
    "separated": StrategyOptions(separate_existential_conjunctions=True),
    "general-s3": StrategyOptions(general_range_extensions=True),
}


@pytest.fixture(params=sorted(ALL_STRATEGY_CONFIGS), ids=sorted(ALL_STRATEGY_CONFIGS))
def strategy_options(request) -> StrategyOptions:
    """Parametrised fixture iterating over representative strategy configurations."""
    return ALL_STRATEGY_CONFIGS[request.param]
