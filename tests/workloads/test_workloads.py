"""Unit tests for the Figure 1 database generator and the paper queries."""

import pytest

from repro.lang.parser import parse_selection
from repro.workloads.generator import GeneratorConfig, random_database, random_workload
from repro.workloads.queries import EXAMPLE_21_TEXT, all_named_queries, example_21
from repro.workloads.university import (
    LEVEL_TYPE,
    STATUS_TYPE,
    UniversityProfile,
    build_university_database,
    figure1_database,
)


class TestFigure1Schema:
    def test_relations_and_keys_match_figure1(self, figure1):
        assert set(figure1.relation_names()) == {"employees", "papers", "courses", "timetable"}
        assert figure1.relation("employees").schema.key == ("enr",)
        assert figure1.relation("papers").schema.key == ("ptitle", "penr")
        assert figure1.relation("courses").schema.key == ("cnr",)
        assert figure1.relation("timetable").schema.key == ("tenr", "tcnr", "tday")

    def test_component_types_match_figure1(self, figure1):
        employees = figure1.relation("employees").schema
        assert employees.field_type("estatus") is STATUS_TYPE
        courses = figure1.relation("courses").schema
        assert courses.field_type("clevel") is LEVEL_TYPE

    def test_base_cardinalities(self, figure1):
        assert figure1.cardinalities() == {
            "employees": 8,
            "papers": 12,
            "courses": 6,
            "timetable": 10,
        }


class TestGenerator:
    def test_scaling_multiplies_cardinalities(self):
        db = build_university_database(scale=3)
        cards = db.cardinalities()
        assert cards["employees"] == 24
        assert cards["papers"] == 36

    def test_determinism(self):
        first = build_university_database(scale=2, seed=7)
        second = build_university_database(scale=2, seed=7)
        assert first.relation("employees") == second.relation("employees")
        assert first.relation("timetable") == second.relation("timetable")

    def test_different_seeds_differ(self):
        first = build_university_database(scale=2, seed=7)
        second = build_university_database(scale=2, seed=8)
        assert first.relation("employees") != second.relation("employees")

    def test_selectivities_present(self):
        db = build_university_database(scale=5)
        employees = db.relation("employees").elements()
        assert any(e.estatus.label == "professor" for e in employees)
        assert any(e.estatus.label != "professor" for e in employees)
        papers = db.relation("papers").elements()
        assert any(p.pyear == 1977 for p in papers)
        courses = db.relation("courses").elements()
        assert any(c.clevel.ordinal <= 1 for c in courses)

    def test_timetable_references_valid_employees_and_courses(self):
        db = build_university_database(scale=3)
        employee_numbers = {e.enr for e in db.relation("employees")}
        course_numbers = {c.cnr for c in db.relation("courses")}
        for entry in db.relation("timetable"):
            assert entry.tenr in employee_numbers
            assert entry.tcnr in course_numbers

    def test_profile_scaling(self):
        profile = UniversityProfile().scaled(4)
        assert profile.employees == 32
        assert profile.professor_fraction == UniversityProfile().professor_fraction


def _snapshot(db):
    return {
        name: sorted(tuple(str(v) for v in r.values) for r in db.relation(name))
        for name in ("employees", "papers", "courses", "timetable")
    }


class TestParallelGeneration:
    """Derived per-(relation, chunk) seeds: parallel generation at scale is
    deterministic no matter how the pool schedules the workers."""

    def test_parallel_generation_is_deterministic(self):
        first = build_university_database(scale=8, paged=False, workers=4)
        second = build_university_database(scale=8, paged=False, workers=4)
        assert _snapshot(first) == _snapshot(second)

    def test_scheduling_cannot_influence_the_data(self, monkeypatch):
        """A fully serialized pool must produce the same database as a real
        4-thread pool — the strongest scheduling perturbation available."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.workloads import university

        parallel = build_university_database(scale=8, paged=False, workers=4)

        class _SerializedPool(ThreadPoolExecutor):
            def __init__(self, max_workers=None):
                super().__init__(max_workers=1)

        monkeypatch.setattr(university, "ThreadPoolExecutor", _SerializedPool)
        serialized = build_university_database(scale=8, paged=False, workers=4)
        assert _snapshot(parallel) == _snapshot(serialized)

    def test_chunk_streams_are_pure_functions_of_their_derived_seed(self):
        """Generating the chunks in any order yields identical rows — the
        property that makes the parallel path scheduling-independent."""
        from repro.workloads.university import (
            _chunk_bounds,
            _chunk_rng,
            _generate_papers,
        )

        profile = UniversityProfile().scaled(8)
        bounds = _chunk_bounds(profile.papers, 4)
        forward = [
            _generate_papers(_chunk_rng(7, "papers", chunk), lo, hi, profile)
            for chunk, (lo, hi) in enumerate(bounds)
        ]
        backward = [
            _generate_papers(_chunk_rng(7, "papers", chunk), *bounds[chunk], profile)
            for chunk in reversed(range(4))
        ]
        assert forward == list(reversed(backward))

    def test_parallel_generation_preserves_cardinalities_and_integrity(self):
        db = build_university_database(scale=8, paged=False, workers=4)
        cards = db.cardinalities()
        assert cards == {"employees": 64, "papers": 96, "courses": 48, "timetable": 80}
        employee_numbers = {e.enr for e in db.relation("employees")}
        course_numbers = {c.cnr for c in db.relation("courses")}
        for entry in db.relation("timetable"):
            assert entry.tenr in employee_numbers
            assert entry.tcnr in course_numbers

    def test_default_path_is_still_the_sequential_generator(self):
        assert _snapshot(build_university_database(scale=2, paged=False)) == _snapshot(
            build_university_database(scale=2, paged=False, workers=0)
        )

    def test_unpaged_database(self):
        db = build_university_database(scale=1, paged=False)
        from repro.storage.storedrelation import StoredRelation

        assert not isinstance(db.relation("employees"), StoredRelation)


class TestPaperQueries:
    def test_all_named_queries_parse_and_resolve(self, figure1):
        from repro.calculus.typecheck import TypeChecker

        checker = TypeChecker.for_database(figure1)
        for name, selection in all_named_queries().items():
            checker.check(selection)

    def test_example_21_text_matches_builder(self):
        assert parse_selection(EXAMPLE_21_TEXT) == example_21()


class TestRandomWorkloadGenerator:
    def test_random_database_respects_config(self):
        import random

        config = GeneratorConfig(max_elements=3, empty_probability=0.0)
        db = random_database(random.Random(1), config)
        assert all(0 < len(rel) <= 3 for rel in db.relations())

    def test_empty_probability_one_gives_empty_relations(self):
        import random

        config = GeneratorConfig(empty_probability=1.0)
        db = random_database(random.Random(1), config)
        assert all(rel.is_empty() for rel in db.relations())

    def test_random_workload_is_reproducible(self):
        assert random_workload(42)[1] == random_workload(42)[1]
