"""The bibliographic domain: schema, skewed generator, and the query library.

The generator's headline guarantee gets a hypothesis property: the produced
database is **byte-identical for any worker count** — the chunk layout is
fixed (:data:`repro.workloads.bibliography.generator.CHUNKS`), each chunk
draws from its own derived RNG, and the parent inserts in a fixed order, so
parallelism changes wall-clock only, never contents.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import connect, execute_naive
from repro.types.scalar import CharArray, Enumeration, Subrange
from repro.workloads.bibliography import (
    BibliographyProfile,
    bibliography_named_queries,
    bibliography_parameterized_queries,
    build_bibliography_database,
    create_standard_indexes,
)
from repro.workloads.bibliography.generator import (
    CHUNKS,
    ERAS,
    _chunk_rng,
    _generate_citations,
    _paper_year,
    _zipf_cumulative,
)


@pytest.fixture(scope="module")
def scale2():
    database = build_bibliography_database(scale=2)
    create_standard_indexes(database)
    return database


def _snapshot(database) -> dict:
    return {
        name: sorted(tuple(record.values) for record in database.relation(name))
        for name in database.relation_names()
    }


class TestSchema:
    def test_relations_and_keys(self, scale2):
        assert set(scale2.relation_names()) == {
            "authors", "venues", "papers", "authorship", "citations",
        }
        assert scale2.relation("authors").schema.key == ("anr",)
        assert scale2.relation("papers").schema.key == ("pnr",)
        assert scale2.relation("authorship").schema.key == ("wanr", "wpnr")
        assert scale2.relation("citations").schema.key == ("csrc", "cdst")

    def test_pascal_scalar_types(self, scale2):
        papers = scale2.relation("papers").schema
        assert isinstance(papers.field_type("pyear"), Subrange)
        assert isinstance(papers.field_type("ptitle"), CharArray)
        venues = scale2.relation("venues").schema
        assert isinstance(venues.field_type("vkind"), Enumeration)

    def test_standard_indexes_cover_the_join_columns(self, scale2):
        indexed = set(scale2.indexes())
        for pair in (
            ("authorship", "wanr"), ("authorship", "wpnr"),
            ("citations", "csrc"), ("citations", "cdst"),
            ("papers", "pvnr"),
        ):
            assert pair in indexed, pair


class TestGenerator:
    def test_determinism_same_seed(self):
        first = build_bibliography_database(scale=1, seed=11)
        second = build_bibliography_database(scale=1, seed=11)
        assert _snapshot(first) == _snapshot(second)

    def test_different_seed_differs(self):
        assert _snapshot(build_bibliography_database(scale=1, seed=1)) != _snapshot(
            build_bibliography_database(scale=1, seed=2)
        )

    def test_scaling_multiplies_cardinalities(self):
        profile = BibliographyProfile()
        cards = build_bibliography_database(scale=3).cardinalities()
        assert cards["authors"] == profile.authors * 3
        assert cards["papers"] == profile.papers * 3
        assert cards["venues"] == profile.venues * 3

    def test_referential_integrity(self, scale2):
        authors = {r["anr"] for r in scale2.relation("authors")}
        papers = {r["pnr"] for r in scale2.relation("papers")}
        venues = {r["vnr"] for r in scale2.relation("venues")}
        for link in scale2.relation("authorship"):
            assert link["wanr"] in authors and link["wpnr"] in papers
        for edge in scale2.relation("citations"):
            assert edge["csrc"] in papers and edge["cdst"] in papers
        for paper in scale2.relation("papers"):
            assert paper["pvnr"] in venues

    def test_citations_point_into_the_past(self, scale2):
        years = {r["pnr"]: r["pyear"] for r in scale2.relation("papers")}
        for edge in scale2.relation("citations"):
            assert edge["cdst"] < edge["csrc"]
            assert years[edge["cdst"]] <= years[edge["csrc"]]

    def test_only_modern_papers_cite(self, scale2):
        profile = BibliographyProfile().scaled(2)
        for edge in scale2.relation("citations"):
            assert profile.is_modern(edge["csrc"])

    def test_authorship_is_skewed(self, scale2):
        counts: dict[int, int] = {}
        for link in scale2.relation("authorship"):
            counts[link["wanr"]] = counts.get(link["wanr"], 0) + 1
        top = max(counts.values())
        mean = sum(counts.values()) / len(counts)
        assert top >= 3 * mean, (top, mean)

    def test_paper_years_are_monotone(self):
        papers = BibliographyProfile().papers
        years = [_paper_year(pnr, papers) for pnr in range(1, papers + 1)]
        assert years == sorted(years)

    def test_eras_partition_the_corpus(self):
        profile = BibliographyProfile().scaled(3)
        eras = [profile.era(pnr) for pnr in range(1, profile.papers + 1)]
        assert eras == sorted(eras)
        assert set(eras) == set(range(ERAS))
        assert profile.is_modern(profile.papers)
        assert not profile.is_modern(1)

    def test_zipf_cumulative_is_a_proper_prefix_sum(self):
        cum = _zipf_cumulative(5, 1.5)
        assert cum[0] == 0.0
        assert all(b > a for a, b in zip(cum, cum[1:]))

    def test_chunk_rngs_are_stream_independent(self):
        # Drawing from one chunk's RNG must not perturb another's stream.
        lone = _chunk_rng(7, "papers", 3).random()
        first = _chunk_rng(7, "papers", 2)
        first.random()
        assert _chunk_rng(7, "papers", 3).random() == lone

    def test_citation_chunks_are_pure_functions_of_their_seed(self):
        profile = BibliographyProfile().scaled(2)
        cum = _zipf_cumulative(profile.papers, profile.citation_zipf)
        lo, hi = profile.papers // 2, profile.papers
        once = _generate_citations(_chunk_rng(5, "citations", 0), lo, hi, profile, cum)
        again = _generate_citations(_chunk_rng(5, "citations", 0), lo, hi, profile, cum)
        assert once == again

    @given(st.integers(min_value=0, max_value=CHUNKS + 3))
    @settings(max_examples=8, deadline=None)
    def test_contents_are_byte_identical_for_any_worker_count(self, workers):
        reference = _snapshot(build_bibliography_database(scale=1, workers=0))
        parallel = _snapshot(build_bibliography_database(scale=1, workers=workers))
        assert parallel == reference


class TestQueryLibrary:
    def test_named_queries_parse_and_run(self, scale2):
        with connect(scale2) as connection:
            for name, query in bibliography_named_queries().items():
                rows = connection.execute(query).fetchall()
                assert isinstance(rows, list), name

    def test_named_queries_match_naive_interpretation(self):
        # Scale 1, and not the four-hop chain: direct interpretation
        # enumerates the full range product, which is exponential in the
        # quantifier depth.  The chain is covered (against the legacy
        # engine configuration) by tests/engine/test_equivalence.py.
        database = build_bibliography_database(scale=1)
        cheap = {"coauthor_pairs", "well_cited_venues", "self_citers", "cocitation"}
        with connect(database) as connection:
            for name, query in bibliography_named_queries().items():
                if name not in cheap:
                    continue
                expected = execute_naive(database, query)
                rows = connection.execute(query).fetchall()
                assert sorted(r.values for r in rows) == sorted(
                    r.values for r in expected
                ), name

    def test_coauthor_pairs_match_hand_computation(self, scale2):
        from repro.workloads.bibliography.queries import COAUTHOR_PAIRS_TEXT

        by_paper: dict[int, set[int]] = {}
        for link in scale2.relation("authorship"):
            by_paper.setdefault(link["wpnr"], set()).add(link["wanr"])
        names = {r["anr"]: r["aname"] for r in scale2.relation("authors")}
        expected = {
            (names[a], names[b])
            for members in by_paper.values()
            for a in members
            for b in members
            if a < b
        }
        with connect(scale2) as connection:
            rows = connection.execute(COAUTHOR_PAIRS_TEXT).fetchall()
        assert {tuple(r.values) for r in rows} == expected

    def test_parameterized_queries_bind_and_run(self, scale2):
        with connect(scale2) as connection:
            for name, (text, bindings) in bibliography_parameterized_queries().items():
                prepared = connection.prepare(text)
                for binding in bindings:
                    result = prepared.execute(binding)
                    assert result.relation is not None, (name, binding)

    def test_well_cited_venues_matches_hand_computation(self, scale2):
        from repro.workloads.bibliography.queries import WELL_CITED_VENUES_TEXT

        cited = {edge["cdst"] for edge in scale2.relation("citations")}
        by_venue: dict[int, list[int]] = {}
        for paper in scale2.relation("papers"):
            by_venue.setdefault(paper["pvnr"], []).append(paper["pnr"])
        expected = {
            venue["vnr"]
            for venue in scale2.relation("venues")
            # vacuously well-cited when the venue has no papers at all
            if all(pnr in cited for pnr in by_venue.get(venue["vnr"], []))
        }
        with connect(scale2) as connection:
            rows = connection.execute(WELL_CITED_VENUES_TEXT).fetchall()
        names = {r.vname for r in rows}
        venue_names = {r["vnr"]: r["vname"] for r in scale2.relation("venues")}
        assert names == {venue_names[v] for v in expected}
