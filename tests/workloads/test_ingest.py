"""DBLP XML ingest: entity decoding, duplicate keys, and observer coherence.

Two guarantees carry hypothesis properties here: **double-ingest is
idempotent** (re-delivering any fragment leaves the database byte-identical
and the second report counts every record as ``unchanged``), and entity
decoding never crashes on arbitrary text.  Everything else pins the concrete
resolution rules of :mod:`repro.workloads.bibliography.ingest` against a
miniature fragment in the real feed's shape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import connect
from repro.relational.database import Database
from repro.workloads.bibliography import (
    DBLP_ENTITIES,
    build_bibliography_database,
    create_standard_indexes,
    decode_entities,
    load_dblp_xml,
)

#: A fragment exercising every resolution rule at once: DOCTYPE-declared
#: entities on top of the built-in table, a shared author across records, a
#: duplicate key whose later record must win, one resolvable and one
#: dangling <cite>, and a record kind the loader does not handle.
FRAGMENT = """<?xml version="1.0" encoding="ISO-8859-1"?>
<!DOCTYPE dblp [
  <!ENTITY uuml "&#252;">
]>
<dblp>
<article mdate="2023-09-20" key="journals/pvldb/SchmittKAMM23">
<author>Daniel Schmitt</author>
<author>Thomas H&uuml;tter</author>
<author>Christine Sch&auml;ler</author>
<title>A Structural Join for Document Stores.</title>
<year>2023</year>
<journal>Proc. VLDB Endow.</journal>
</article>
<inproceedings mdate="2022-05-01" key="conf/sigmod/HutterA22">
<author>Thomas H&uuml;tter</author>
<author>Nikolaus Augsten</author>
<title>Tree Similarity Joins.</title>
<year>2022</year>
<booktitle>SIGMOD Conference</booktitle>
<cite>journals/pvldb/SchmittKAMM23</cite>
<cite>conf/nowhere/Unknown99</cite>
</inproceedings>
<www key="homepages/h/ThomasHutter">
<author>Thomas H&uuml;tter</author>
</www>
<article mdate="2024-01-05" key="journals/pvldb/SchmittKAMM23">
<author>Daniel Schmitt</author>
<author>Thomas H&uuml;tter</author>
<title>A Structural Join for Document Stores (extended).</title>
<year>2023</year>
<journal>Proc. VLDB Endow.</journal>
</article>
</dblp>"""


def _names(database, relation, field):
    return {record[field].rstrip() for record in database.relation(relation)}


def _snapshot(database) -> dict:
    return {
        name: sorted(tuple(record.values) for record in database.relation(name))
        for name in database.relation_names()
    }


class TestEntityDecoding:
    def test_builtin_dblp_entities_are_decoded_and_counted(self):
        decoded, count = decode_entities("H&uuml;tter and Sch&auml;ler")
        assert decoded == "Hütter and Schäler"
        assert count == 2

    def test_doctype_declarations_extend_and_override(self):
        text = '<!DOCTYPE dblp [ <!ENTITY uuml "U"> <!ENTITY smiley ":-)"> ]>' \
               "<dblp>&uuml;&smiley;</dblp>"
        decoded, count = decode_entities(text)
        assert decoded == "<dblp>U:-)</dblp>"
        assert count == 2

    def test_xml_builtins_are_left_for_the_parser(self):
        decoded, count = decode_entities("a &amp; b &lt; c")
        assert decoded == "a &amp; b &lt; c"
        assert count == 0

    def test_unknown_entities_pass_through(self):
        decoded, count = decode_entities("&notanentity; stays")
        assert decoded == "&notanentity; stays"
        assert count == 0

    def test_the_builtin_table_covers_the_latin_1_standbys(self):
        for name in ("auml", "ouml", "uuml", "szlig", "eacute", "oslash"):
            assert name in DBLP_ENTITIES

    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_decoding_never_crashes(self, text):
        decoded, count = decode_entities(text)
        assert isinstance(decoded, str) and count >= 0


class TestIngestRoundTrip:
    @pytest.fixture(scope="class")
    def loaded(self):
        database = Database("dblp", paged=False)
        report = load_dblp_xml(FRAGMENT, database)
        return database, report

    def test_report_counts_the_whole_story(self, loaded):
        _, report = loaded
        assert report.records == 3          # the www element is not a record
        assert report.skipped == 1
        assert report.inserted == 2
        assert report.updated == 1          # the re-exported SchmittKAMM23
        assert report.unchanged == 0
        assert report.duplicate_keys == 1
        assert report.citations_created == 1
        assert report.unresolved_citations == 1
        assert report.entities_decoded > 0

    def test_entities_land_decoded_in_the_relations(self, loaded):
        database, _ = loaded
        assert "Thomas Hütter" in _names(database, "authors", "aname")
        assert "Christine Schäler" in _names(database, "authors", "aname")

    def test_duplicate_key_resolves_last_write_wins(self, loaded):
        database, _ = loaded
        rows = [
            record for record in database.relation("papers")
            if record["pkey"].rstrip() == "journals/pvldb/SchmittKAMM23"
        ]
        assert len(rows) == 1
        assert rows[0]["ptitle"].rstrip().endswith("(extended).")
        # the later record dropped the third author: the link goes with it
        winners = {
            link["wanr"] for link in database.relation("authorship")
            if link["wpnr"] == rows[0]["pnr"]
        }
        assert len(winners) == 2

    def test_shared_authors_are_allocated_once(self, loaded):
        database, _ = loaded
        hutter = [
            record["anr"] for record in database.relation("authors")
            if record["aname"].rstrip() == "Thomas Hütter"
        ]
        assert len(hutter) == 1

    def test_citation_edge_points_at_the_resolved_paper(self, loaded):
        database, _ = loaded
        keys = {r["pnr"]: r["pkey"].rstrip() for r in database.relation("papers")}
        edges = [tuple(r.values) for r in database.relation("citations")]
        assert len(edges) == 1
        csrc, cdst = edges[0]
        assert keys[csrc] == "conf/sigmod/HutterA22"
        assert keys[cdst] == "journals/pvldb/SchmittKAMM23"

    def test_loading_from_a_file_path_matches_text(self, tmp_path, loaded):
        database, _ = loaded
        path = tmp_path / "fragment.xml"
        path.write_text(FRAGMENT, encoding="utf-8")
        from_file = Database("dblp-file", paged=False)
        load_dblp_xml(path, from_file)
        assert _snapshot(from_file) == _snapshot(database)

    def test_reingesting_the_fragment_is_idempotent(self, loaded):
        database, _ = loaded
        before = _snapshot(database)
        again = load_dblp_xml(FRAGMENT, database)
        assert _snapshot(database) == before
        assert again.inserted == 0
        # replaying the duplicated key re-applies both versions (the earlier
        # record differs from the stored winner, the winner then differs from
        # the earlier record), so the pair counts as two updates — the net
        # contents are still identical
        assert again.updated == 2 and again.unchanged == 1
        assert again.citations_created == 0  # the edge already exists


class TestIngestExtendsGeneratedData:
    def test_numbers_continue_above_the_generator(self):
        database = build_bibliography_database(scale=1)
        top_anr = max(r["anr"] for r in database.relation("authors"))
        top_pnr = max(r["pnr"] for r in database.relation("papers"))
        report = load_dblp_xml(FRAGMENT, database)
        assert report.inserted == 2
        new_pnrs = {
            r["pnr"] for r in database.relation("papers") if r["pnr"] > top_pnr
        }
        assert len(new_pnrs) == 2
        assert min(r["anr"] for r in database.relation("authors")
                   if r["aname"].rstrip() == "Thomas Hütter") > top_anr

    def test_observers_see_the_load(self):
        # Indexes and table statistics attached *before* the load must stay
        # coherent without any rebuild: ingest goes through the public
        # session API, hence through the relations' mutation hooks.
        database = build_bibliography_database(scale=1)
        create_standard_indexes(database)
        stats = database.table_statistics("authorship")
        with connect(database) as connection:
            load_dblp_xml(FRAGMENT, connection)
        authorship = database.relation("authorship")
        index = database.index_for("authorship", "wanr")
        assert len(index) == len(authorship)
        for link in authorship:
            refs = index.probe(link["wanr"])
            assert any(ref.key == (link["wanr"], link["wpnr"]) for ref in refs)
        column = stats.column("wanr")
        counts: dict[int, int] = {}
        for link in authorship:
            counts[link["wanr"]] = counts.get(link["wanr"], 0) + 1
        for anr, count in counts.items():
            assert stats.frequency("wanr", anr) == count
        assert column is not None


# A tiny record-level XML writer for the idempotence property: hypothesis
# drives the *shape* (keys, authors, cite targets — duplicates included),
# the writer renders it in DBLP form, and the property asserts re-ingest
# changes nothing.

_KEYS = ("conf/a/One1", "conf/a/Two2", "journals/b/Three3")
_AUTHORS = ("Alice", "Bob", "Chloé", "Dörte")

_record = st.fixed_dictionaries(
    {
        "key": st.sampled_from(_KEYS),
        "title": st.sampled_from(("Paper", "Extended Paper", "Errata")),
        "year": st.integers(min_value=1950, max_value=2030),
        "authors": st.lists(st.sampled_from(_AUTHORS), min_size=1, max_size=3),
        "cites": st.lists(
            st.sampled_from(_KEYS + ("conf/x/Missing0",)), max_size=2
        ),
    }
)


def _render(records) -> str:
    parts = ["<dblp>"]
    for record in records:
        parts.append(f'<article key="{record["key"]}">')
        for author in record["authors"]:
            parts.append(f"<author>{author}</author>")
        parts.append(f"<title>{record['title']}</title>")
        parts.append(f"<year>{record['year']}</year>")
        parts.append("<journal>J. Test</journal>")
        for cite in record["cites"]:
            parts.append(f"<cite>{cite}</cite>")
        parts.append("</article>")
    parts.append("</dblp>")
    return "".join(parts)


class TestDoubleIngestProperty:
    @given(st.lists(_record, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_double_ingest_is_idempotent(self, records):
        text = _render(records)
        database = Database("dblp-prop", paged=False)
        load_dblp_xml(text, database)
        once = _snapshot(database)
        second = load_dblp_xml(text, database)
        assert _snapshot(database) == once
        assert second.inserted == 0
        assert second.citations_created == 0
        assert second.unchanged + second.updated == second.records

    @given(st.lists(_record, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_one_load_equals_two_half_loads(self, records):
        text = _render(records)
        whole = Database("dblp-whole", paged=False)
        load_dblp_xml(text, whole)
        halves = Database("dblp-halves", paged=False)
        split = max(len(records) // 2, 1)
        load_dblp_xml(_render(records[:split]), halves)
        load_dblp_xml(_render(records[split:]), halves)
        # citation edges may resolve only in the second half's pass, but
        # papers/authors/venues must agree exactly
        for name in ("authors", "venues", "papers", "authorship"):
            assert _snapshot(halves)[name] == _snapshot(whole)[name]
