"""Unit tests for the lexer and the PASCAL/R-style selection parser."""

import pytest

from repro.calculus.ast import (
    ALL,
    And,
    Comparison,
    Const,
    FieldRef,
    Not,
    Or,
    Quantified,
    SOME,
)
from repro.errors import LexError, ParseError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_formula, parse_selection
from repro.lang.tokens import TokenType
from repro.workloads.queries import EXAMPLE_21_TEXT, example_21


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("some ALL each In of")
        assert [t.value for t in tokens[:-1]] == ["SOME", "ALL", "EACH", "IN", "OF"]
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_numbers_strings(self):
        tokens = tokenize("employees 1977 'Highman'")
        assert tokens[0].type == TokenType.IDENT
        assert tokens[1].value == 1977
        assert tokens[2].type == TokenType.STRING
        assert tokens[2].value == "Highman"

    def test_two_character_operators(self):
        tokens = tokenize("<> <= >= < > =")
        assert [t.value for t in tokens[:-1]] == ["<>", "<=", ">=", "<", ">", "="]

    def test_punctuation(self):
        tokens = tokenize("[ ] ( ) , : .")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.COLON,
            TokenType.DOT,
        ]

    def test_comments_are_skipped(self):
        tokens = tokenize("a (* PASCAL comment *) b { braces } c")
        assert [t.value for t in tokens[:-1]] == ["a", "b", "c"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_positions_are_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'open")

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("(* never closed")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_ends_with_eof(self):
        assert tokenize("")[-1].type == TokenType.EOF


class TestFormulaParsing:
    def test_simple_comparison(self):
        formula = parse_formula("(e.estatus = professor)")
        assert formula == Comparison(FieldRef("e", "estatus"), "=", Const("professor"))

    def test_precedence_and_binds_tighter_than_or(self):
        formula = parse_formula("(a.x = 1) OR (a.y = 2) AND (a.z = 3)")
        assert isinstance(formula, Or)
        assert isinstance(formula.operands[1], And)

    def test_not(self):
        formula = parse_formula("NOT (a.x = 1)")
        assert isinstance(formula, Not)

    def test_quantifiers(self):
        formula = parse_formula("SOME t IN timetable ((t.tenr = e.enr))")
        assert isinstance(formula, Quantified)
        assert formula.kind == SOME
        assert formula.range.relation == "timetable"
        universal = parse_formula("ALL p IN papers ((p.pyear <> 1977))")
        assert universal.kind == ALL

    def test_extended_range_in_quantifier(self):
        formula = parse_formula(
            "ALL p IN [EACH p IN papers: (p.pyear = 1977)] ((p.penr <> e.enr))"
        )
        assert formula.range.is_extended()

    def test_extended_range_with_different_inner_variable_is_renamed(self):
        formula = parse_formula(
            "ALL p IN [EACH x IN papers: (x.pyear = 1977)] ((p.penr <> e.enr))"
        )
        restriction = formula.range.restriction
        assert restriction.left == FieldRef("p", "pyear")

    def test_true_false_constants(self):
        assert parse_formula("true").value is True
        assert parse_formula("FALSE").value is False

    def test_numbers_and_strings_as_operands(self):
        formula = parse_formula("(e.ename = 'Highman')")
        assert formula.right == Const("Highman")

    def test_missing_operator_raises(self):
        with pytest.raises(ParseError):
            parse_formula("(e.enr e.enr)")

    def test_trailing_tokens_raise(self):
        with pytest.raises(ParseError):
            parse_formula("(e.enr = 1) extra")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_formula("(e.enr = )")
        assert excinfo.value.line == 1


class TestSelectionParsing:
    def test_minimal_selection(self):
        selection = parse_selection("[<e.ename> OF EACH e IN employees: true]")
        assert selection.free_variables == ("e",)
        assert selection.columns[0].field == "ename"

    def test_multiple_columns_and_bindings(self):
        selection = parse_selection(
            "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses: "
            "(e.enr = c.cnr)]"
        )
        assert len(selection.columns) == 2
        assert selection.free_variables == ("e", "c")

    def test_column_alias(self):
        selection = parse_selection(
            "[<e.ename AS name> OF EACH e IN employees: true]"
        )
        assert selection.columns[0].alias == "name"

    def test_extended_range_binding(self):
        selection = parse_selection(
            "[<e.ename> OF EACH e IN [EACH e IN employees: (e.estatus = professor)]: true]"
        )
        assert selection.bindings[0].range.is_extended()

    def test_running_query_matches_builder_form(self):
        assert parse_selection(EXAMPLE_21_TEXT) == example_21()

    def test_missing_bracket_raises(self):
        with pytest.raises(ParseError):
            parse_selection("[<e.ename> OF EACH e IN employees: true")

    def test_missing_of_raises(self):
        with pytest.raises(ParseError):
            parse_selection("[<e.ename> EACH e IN employees: true]")
