"""Lexing, parsing and printing of ``$name`` query parameters."""

import pytest

from repro.calculus.ast import Comparison, FieldRef, Param
from repro.calculus.printer import format_selection
from repro.calculus import builder as q
from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_selection
from repro.lang.tokens import TokenType


class TestLexer:
    def test_parameter_token(self):
        tokens = tokenize("$year")
        assert tokens[0].type == TokenType.PARAM
        assert tokens[0].value == "year"

    def test_parameter_with_underscores_and_digits(self):
        tokens = tokenize("$max_year_2")
        assert tokens[0].value == "max_year_2"

    def test_bare_dollar_is_an_error(self):
        with pytest.raises(LexError):
            tokenize("$ year")

    def test_digit_initial_name_is_an_error(self):
        with pytest.raises(LexError):
            tokenize("$1year")

    def test_parameter_inside_query_text(self):
        tokens = tokenize("(p.pyear <> $year)")
        assert [t.type for t in tokens[:7]] == [
            TokenType.LPAREN,
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
            TokenType.OPERATOR,
            TokenType.PARAM,
            TokenType.RPAREN,
        ]


class TestParser:
    def test_parameter_operand(self):
        selection = parse_selection(
            "[<e.ename> OF EACH e IN employees: (e.estatus = $status)]"
        )
        comparison = selection.formula
        assert isinstance(comparison, Comparison)
        assert comparison.left == FieldRef("e", "estatus")
        assert comparison.right == Param("status")

    def test_parameter_on_either_side(self):
        selection = parse_selection(
            "[<e.ename> OF EACH e IN employees: ($status = e.estatus)]"
        )
        assert selection.formula.left == Param("status")

    def test_parameter_in_extended_range(self):
        selection = parse_selection(
            "[<p.ptitle> OF EACH p IN [EACH p IN papers: (p.pyear = $year)]: TRUE]"
        )
        restriction = selection.bindings[0].range.restriction
        assert restriction.right == Param("year")


class TestPrinterRoundTrip:
    def test_parameters_print_and_reparse(self):
        text = (
            "[<e.ename> OF EACH e IN employees: "
            "(e.estatus = $status) AND SOME p IN papers ((p.pyear <> $year) "
            "AND (p.penr = e.enr))]"
        )
        selection = parse_selection(text)
        printed = format_selection(selection)
        assert "$status" in printed
        assert parse_selection(printed) == selection


class TestBuilder:
    def test_param_helper(self):
        comparison = q.eq(("e", "estatus"), q.param("status"))
        assert comparison.right == Param("status")

    def test_operand_passes_params_through(self):
        assert q.operand(Param("x")) == Param("x")
