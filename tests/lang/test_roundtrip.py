"""Printer/parser round-trip tests (including property-based ones)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus.printer import format_formula, format_selection
from repro.lang.parser import parse_formula, parse_selection
from repro.workloads.generator import random_selection
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    NO_1977_PAPERS_TEXT,
    PROFESSORS_TEXT,
    SENIORITY_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
)


NAMED_QUERIES = {
    "example_2_1": EXAMPLE_21_TEXT,
    "example_4_5": EXAMPLE_45_TEXT,
    "professors": PROFESSORS_TEXT,
    "teaches_low_level": TEACHES_LOW_LEVEL_TEXT,
    "no_1977_papers": NO_1977_PAPERS_TEXT,
    "seniority": SENIORITY_TEXT,
}


@pytest.mark.parametrize("name", sorted(NAMED_QUERIES))
def test_named_queries_round_trip(name):
    """print(parse(text)) parses back to the same AST for every paper query."""
    selection = parse_selection(NAMED_QUERIES[name])
    printed = format_selection(selection)
    assert parse_selection(printed) == selection


@pytest.mark.parametrize("name", sorted(NAMED_QUERIES))
def test_printing_is_deterministic(name):
    selection = parse_selection(NAMED_QUERIES[name])
    assert format_selection(selection) == format_selection(selection)


def test_formula_round_trip_simple():
    text = "(e.estatus = professor) AND SOME t IN timetable ((t.tenr = e.enr))"
    formula = parse_formula(text)
    assert parse_formula(format_formula(formula)) == formula


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_selections_round_trip(seed):
    """Randomly generated selections survive print -> parse unchanged."""
    selection = random_selection(random.Random(seed))
    printed = format_selection(selection)
    assert parse_selection(printed) == selection
