"""Satellite: close() in ``checkpoint`` durability — flush before truncate.

In ``durability='checkpoint'`` mode, commits flush the WAL to the OS without
fsync, so at ``Database.close()`` time the log's durable watermark lags its
flushed tail.  ``close()`` runs a full checkpoint, whose contract is the
ordering under test here: **flush+fsync the WAL first**, then write pages and
the snapshot, and only then truncate the log.  Were the truncation (or the
snapshot rename) to run against an unflushed buffer, the committed tail
would be gone.

The harness crashes the close at *every* storage write event it performs
(WAL flushes — torn and clean — page flushes, snapshot write/rename,
truncation) and reopens: recovery must see every committed transaction every
time.  A rolled-back transaction must never resurface either.
"""

from __future__ import annotations

import pytest

from repro.config import DURABILITY_CHECKPOINT
from repro.relational.database import Database
from repro.storage.wal import CrashPoint, SimulatedCrash
from repro.types.scalar import INTEGER

_BATCHES = 4
_ROWS_PER_BATCH = 3


def _expected_rows() -> set[tuple]:
    return {
        (batch * _ROWS_PER_BATCH + i, batch)
        for batch in range(_BATCHES)
        for i in range(_ROWS_PER_BATCH)
    }


def _run_until_close(directory, crash_point=None) -> Database:
    """Open, commit ``_BATCHES`` transactions, roll one back; return open db.

    The crash point (if any) is armed only afterwards, so every event it
    counts or fires on belongs to ``close()``.
    """
    database = Database.open(directory, durability=DURABILITY_CHECKPOINT)
    relation = database.create_relation(
        "items",
        [("k", INTEGER), ("batch", INTEGER)],
        key=["k"],
        page_capacity=3,
    )
    for batch in range(_BATCHES):
        journal = database.begin_transaction()
        for i in range(_ROWS_PER_BATCH):
            relation.insert({"k": batch * _ROWS_PER_BATCH + i, "batch": batch})
        database.commit_transaction(journal)
        database.end_transaction(journal)
    # An aborted transaction: must never be visible after any crash.
    journal = database.begin_transaction()
    relation.insert({"k": 999, "batch": 999})
    database.abort_transaction(journal)
    database.end_transaction(journal)
    journal.rollback()
    database.crash_point = crash_point
    if database._wal is not None:
        database._wal.crash_point = crash_point
    return database


def _recovered_rows(directory) -> set[tuple]:
    database = Database.open(directory)
    try:
        return {
            tuple(record.values)
            for record in database.relation("items").scan()
        }
    finally:
        database.close()


def _close_event_count(tmp_path) -> int:
    probe = CrashPoint()
    database = _run_until_close(str(tmp_path / "probe"), crash_point=probe)
    database.close()
    return probe.count


def test_clean_close_preserves_every_committed_transaction(tmp_path):
    directory = str(tmp_path / "clean")
    _run_until_close(directory).close()
    assert _recovered_rows(directory) == _expected_rows()


def test_every_close_crash_point_recovers_every_commit(tmp_path):
    total = _close_event_count(tmp_path)
    assert total > 0, "close() must perform storage write events to crash at"
    failures = []
    for k in range(total):
        for torn in (False, True):
            directory = str(tmp_path / f"crash-{k}-{'torn' if torn else 'clean'}")
            crash_point = CrashPoint(crash_at=k, torn=torn)
            database = _run_until_close(directory, crash_point=crash_point)
            with pytest.raises(SimulatedCrash):
                database.close()
            if _recovered_rows(directory) != _expected_rows():
                failures.append((k, torn, crash_point.events[k]))
    assert not failures, (
        "a crash during close() lost committed transactions at: "
        + "; ".join(f"event {k} ({desc})" for k, torn, desc in failures)
    )


def test_recovery_after_close_crash_is_idempotent(tmp_path):
    directory = str(tmp_path / "reopen")
    database = _run_until_close(
        directory, crash_point=CrashPoint(crash_at=0, torn=True)
    )
    with pytest.raises(SimulatedCrash):
        database.close()
    for _ in range(3):
        assert _recovered_rows(directory) == _expected_rows()
