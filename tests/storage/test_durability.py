"""The disk-resident database lifecycle: open/checkpoint/close, durability
modes, the buffer pool's write-ahead gate, DDL checkpoints, and the
``connect(path)`` front door."""

from __future__ import annotations

import contextlib
import os

import pytest

import repro
from repro import DURABILITY_CHECKPOINT, DURABILITY_COMMIT, DURABILITY_OFF, connect
from repro.errors import StorageError, TransactionError
from repro.relational.database import Database
from repro.storage.buffer import BufferPool
from repro.storage.snapshot import snapshot_path, wal_path
from repro.storage.wal import scan_wal
from repro.types.scalar import INTEGER, CharArray


@contextlib.contextmanager
def committed(database):
    """One committed transaction at the Database level (no session layer)."""
    journal = database.begin_transaction()
    yield journal
    database.commit_transaction(journal)
    database.end_transaction(journal)


def make_relation(database, name="t", page_capacity=4):
    return database.create_relation(
        name,
        [("k", INTEGER), ("label", CharArray(8, "labeltype"))],
        key=["k"],
        page_capacity=page_capacity,
    )


def keys(database, name="t"):
    return sorted(r.k for r in database.relation(name))


class TestOpenAndReopen:
    def test_fresh_open_writes_an_initial_checkpoint(self, tmp_path):
        database = Database.open(tmp_path)
        assert database.directory == str(tmp_path)
        assert os.path.exists(snapshot_path(str(tmp_path)))
        assert database.recovery_report.clean
        assert "replayed 0" in database.recovery_report.describe()
        database.close()

    def test_unknown_durability_mode_is_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Database.open(tmp_path, durability="paranoid")

    def test_name_defaults_to_the_directory(self, tmp_path):
        database = Database.open(tmp_path / "inventory")
        assert database.name == "inventory"
        database.close()

    def test_data_and_indexes_survive_close_and_reopen(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        database.create_index("t", "label")
        database.create_index("t", "k", operator="<=")
        with committed(database):
            for k in range(5):
                relation.insert({"k": k, "label": f"row{k}"})
        with committed(database):
            relation.delete_key(3)
        database.close()

        reopened = Database.open(tmp_path)
        assert keys(reopened) == [0, 1, 2, 4]
        assert reopened.index_for("t", "label") is not None
        assert reopened.index_for("t", "k") is not None
        assert sorted(reopened.indexes()) == [("t", "k"), ("t", "label")]
        # The reopened index actually probes (CharArray values are padded).
        index = reopened.index_for("t", "label")
        padded = reopened.relation("t").schema.field_type("label").coerce("row2")
        assert len(index.probe(padded)) == 1
        reopened.close()

    def test_uncommitted_transaction_is_invisible_after_reopen(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "keep"})
        journal = database.begin_transaction()
        relation.insert({"k": 2, "label": "lose"})
        database.abort_transaction(journal)
        database.end_transaction(journal)
        journal.rollback()
        database.close()
        reopened = Database.open(tmp_path)
        assert keys(reopened) == [1]
        reopened.close()

    def test_page_capacity_survives_reopen(self, tmp_path):
        database = Database.open(tmp_path)
        make_relation(database, page_capacity=2)
        database.close()
        reopened = Database.open(tmp_path)
        heap = getattr(reopened.relation("t"), "_heap", None)
        assert heap is not None and heap.page_capacity == 2
        reopened.close()


class TestDurabilityModes:
    def test_commit_mode_survives_an_abandoned_process(self, tmp_path):
        database = Database.open(tmp_path, durability=DURABILITY_COMMIT)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "durable"})
        # No close(), no checkpoint: the process just vanishes.  The WAL's
        # committed suffix alone must reproduce the transaction.
        del database
        reopened = Database.open(tmp_path)
        assert keys(reopened) == [1]
        assert reopened.recovery_report.replayed_transactions == [1]
        reopened.close()

    def test_commit_mode_logs_redo_records(self, tmp_path):
        database = Database.open(tmp_path, durability=DURABILITY_COMMIT)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "x"})
        records, damage = scan_wal(wal_path(str(tmp_path)))
        assert damage is None
        assert [r["kind"] for r in records] == [
            "CHECKPOINT", "BEGIN", "INSERT", "COMMIT",
        ]
        database.close()

    def test_off_mode_keeps_no_log_and_loses_unclosed_work(self, tmp_path):
        database = Database.open(tmp_path, durability=DURABILITY_OFF)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "volatile"})
        assert scan_wal(wal_path(str(tmp_path))) == ([], None)
        del database  # vanish without close: the commit was never forced
        reopened = Database.open(tmp_path, durability=DURABILITY_OFF)
        assert keys(reopened) == []
        reopened.close()

    def test_off_mode_persists_at_close(self, tmp_path):
        database = Database.open(tmp_path, durability=DURABILITY_OFF)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "kept"})
        database.close()
        reopened = Database.open(tmp_path, durability=DURABILITY_OFF)
        assert keys(reopened) == [1]
        reopened.close()

    def test_checkpoint_mode_survives_a_process_crash(self, tmp_path):
        # flush-no-fsync on commit: the records reached the file (surviving
        # a *process* crash in this simulation), only the fsync is deferred.
        database = Database.open(tmp_path, durability=DURABILITY_CHECKPOINT)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 9, "label": "lazy"})
        del database
        reopened = Database.open(tmp_path, durability=DURABILITY_CHECKPOINT)
        assert keys(reopened) == [9]
        reopened.close()

    def test_mixed_mode_reopen_reads_the_same_files(self, tmp_path):
        database = Database.open(tmp_path, durability=DURABILITY_COMMIT)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 4, "label": "any"})
        database.close()
        reopened = Database.open(tmp_path, durability=DURABILITY_OFF)
        assert keys(reopened) == [4]
        reopened.close()


class TestCheckpoint:
    def test_checkpoint_truncates_the_log(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "a"})
        database.checkpoint()
        records, damage = scan_wal(wal_path(str(tmp_path)))
        assert damage is None
        assert [r["kind"] for r in records] == ["CHECKPOINT"]
        database.close()

    def test_checkpoint_refused_inside_a_transaction(self, tmp_path):
        database = Database.open(tmp_path)
        journal = database.begin_transaction()
        with pytest.raises(TransactionError):
            database.checkpoint()
        database.end_transaction(journal)
        database.close()

    def test_checkpoint_refused_on_in_memory_database(self):
        with pytest.raises(StorageError):
            Database("ephemeral").checkpoint()

    def test_lsns_keep_climbing_across_checkpoints(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "a"})
        database.checkpoint()
        with committed(database):
            relation.insert({"k": 2, "label": "b"})
        records, _ = scan_wal(wal_path(str(tmp_path)))
        lsns = [r["lsn"] for r in records]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        database.close()


class TestClose:
    def test_close_is_idempotent_and_final(self, tmp_path):
        database = Database.open(tmp_path)
        database.close()
        database.close()
        assert database.closed
        with pytest.raises(StorageError):
            database.checkpoint()

    def test_close_refused_with_active_transaction(self, tmp_path):
        database = Database.open(tmp_path)
        journal = database.begin_transaction()
        with pytest.raises(TransactionError):
            database.close()
        database.end_transaction(journal)
        database.close()

    def test_in_memory_close_just_marks_closed(self):
        database = Database("ephemeral")
        database.close()
        assert database.closed


class TestWriteAheadGate:
    """A dirty page must never be forced before its log record is durable."""

    def test_flush_behind_durable_lsn_is_a_violation(self):
        pool = BufferPool()
        pool.mark_dirty("t", 0, lsn=7)
        with pytest.raises(StorageError, match="write-ahead"):
            pool.flush_page("t", 0, durable_lsn=6)
        # The record becomes durable; now the force is legal.
        pool.flush_page("t", 0, durable_lsn=7)
        assert pool.dirty_count() == 0

    def test_mark_dirty_keeps_the_highest_lsn(self):
        pool = BufferPool()
        pool.mark_dirty("t", 0, lsn=5)
        pool.mark_dirty("t", 0, lsn=3)  # an older record cannot lower the bar
        assert pool.dirty_pages() == [("t", 0, 5)]

    def test_unlogged_mutations_always_pass_the_gate(self):
        pool = BufferPool()
        pool.mark_dirty("t", 1, lsn=0)
        pool.flush_page("t", 1, durable_lsn=0)
        assert pool.dirty_count() == 0

    def test_discard_and_filtering_by_file(self):
        pool = BufferPool()
        pool.mark_dirty("a", 0, lsn=1)
        pool.mark_dirty("b", 0, lsn=2)
        assert pool.dirty_count("a") == 1
        pool.discard_dirty("a")
        assert pool.dirty_pages() == [("b", 0, 2)]
        pool.discard_dirty()
        assert pool.dirty_count() == 0

    def test_flush_of_a_clean_page_is_a_noop(self):
        pool = BufferPool()
        pool.flush_page("t", 3, durable_lsn=0)


class TestDDLCheckpoints:
    def test_ddl_outside_a_transaction_checkpoints_immediately(self, tmp_path):
        database = Database.open(tmp_path)
        before = database.statistics.checkpoints
        make_relation(database)
        assert database.statistics.checkpoints == before + 1
        database.create_index("t", "label")
        assert database.statistics.checkpoints == before + 2
        database.close()

    def test_ddl_inside_a_transaction_defers_the_checkpoint(self, tmp_path):
        database = Database.open(tmp_path)
        before = database.statistics.checkpoints
        with committed(database):
            make_relation(database)
            assert database.statistics.checkpoints == before  # deferred
        assert database.run_pending_checkpoint() is True
        assert database.statistics.checkpoints == before + 1
        assert database.run_pending_checkpoint() is False  # nothing pending now
        database.close()

    def test_session_runs_the_deferred_checkpoint_at_commit(self, tmp_path):
        connection = connect(str(tmp_path))
        database = connection.database
        before = database.statistics.checkpoints
        with connection.session():
            make_relation(database)
        assert database.statistics.checkpoints == before + 1
        connection.close()

    def test_in_memory_ddl_never_checkpoints(self):
        database = Database("ephemeral")
        make_relation(database)
        assert database.statistics.checkpoints == 0

    def test_drop_relation_is_durable(self, tmp_path):
        database = Database.open(tmp_path)
        make_relation(database)
        database.drop_relation("t")
        database.close()
        reopened = Database.open(tmp_path)
        assert "t" not in list(reopened.relation_names())
        reopened.close()


class TestConnectPath:
    def test_connect_opens_owns_and_closes_the_database(self, tmp_path):
        connection = connect(str(tmp_path), durability=DURABILITY_COMMIT)
        database = connection.database
        assert database.directory == str(tmp_path)
        assert connection.recovery_report is not None
        assert connection.recovery_report.clean
        make_relation(database)
        with connection.session():
            database.relation("t").insert({"k": 1, "label": "via-api"})
        connection.checkpoint()
        connection.close()
        assert database.closed

        with connect(str(tmp_path)) as reopened:
            rows = reopened.database.relation("t")
            assert [r.label.strip() for r in rows] == ["via-api"]

    def test_connect_accepts_a_pathlike(self, tmp_path):
        with connect(tmp_path / "db") as connection:
            assert connection.database.directory == str(tmp_path / "db")

    def test_object_connections_do_not_own_their_database(self):
        database = repro.build_university_database(scale=1)
        connection = connect(database)
        assert connection.recovery_report is None
        connection.close()
        assert not getattr(database, "closed", False)
        with pytest.raises(StorageError):
            connection_checkpoint = Database("m")
            connection_checkpoint.checkpoint()


class TestStatisticsCounters:
    def test_wal_and_checkpoint_counters_accumulate(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "n"})
        stats = database.statistics
        assert stats.wal_records >= 3  # BEGIN + INSERT + COMMIT at least
        assert stats.wal_bytes > 0
        assert stats.wal_flushes >= 1
        assert stats.checkpoints >= 1
        snapshot = stats.as_dict()
        for counter in ("wal_records", "wal_bytes", "wal_flushes",
                        "checkpoints", "recovered_transactions"):
            assert counter in snapshot
        database.close()

    def test_recovered_transactions_counted_on_reopen(self, tmp_path):
        database = Database.open(tmp_path)
        relation = make_relation(database)
        with committed(database):
            relation.insert({"k": 1, "label": "a"})
        with committed(database):
            relation.insert({"k": 2, "label": "b"})
        del database  # abandoned: both commits live only in the WAL
        reopened = Database.open(tmp_path)
        assert reopened.statistics.recovered_transactions == 2
        assert reopened.recovery_report.records_replayed >= 2
        reopened.close()
