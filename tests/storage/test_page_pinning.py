"""Satellite bugfix regression: streamed scans pin their buffer-pool pages.

A :class:`StoredRelation` scan is a generator; under the streaming executor
it can stay parked on one page for the whole life of a pipeline while other
operators scan other relations through the *same* buffer pool.  Before the
fix, pool reuse could evict the frame under the parked iterator; now the
scan pins its current page (pins nest, survive ``invalidate``, and are
released on advance or early close), and LRU eviction skips pinned frames —
overflowing temporarily when everything is pinned rather than yanking a page
out from under a live iterator.
"""

from __future__ import annotations

import pytest

from repro.engine.stream import RowStream
from repro.errors import StorageError
from repro.relational.algebra import natural_join, stream_natural_join
from repro.relational.statistics import AccessStatistics
from repro.storage.buffer import BufferPool
from repro.storage.storedrelation import StoredRelation
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema


def stored(
    name: str,
    fields: list[str],
    rows: list[tuple],
    pool: BufferPool,
    page_capacity: int = 4,
    tracker: AccessStatistics | None = None,
) -> StoredRelation:
    schema = RelationSchema(name, [(f, INTEGER) for f in fields])
    relation = StoredRelation(
        name, schema, tracker=tracker, page_capacity=page_capacity, buffer_pool=pool
    )
    for row in rows:
        relation.insert(dict(zip(fields, row)))
    return relation


class TestPinning:
    def test_parked_scan_page_survives_pool_thrash(self):
        pool = BufferPool(size=2)
        big = stored("big", ["a"], [(i,) for i in range(40)], pool)  # 10 pages
        other = stored("other", ["b"], [(i,) for i in range(40)], pool)

        iterator = big.scan()
        first = next(iterator)  # parked on page 0, which is now pinned
        assert pool.pin_count("big", 0) == 1
        assert pool.is_resident("big", 0)

        consumed = list(other.scan())  # 10 pages through a 2-frame pool
        assert len(consumed) == 40
        # The parked page was never evicted, despite heavy reuse pressure.
        assert pool.is_resident("big", 0)
        assert pool.pin_count("big", 0) == 1

        rest = list(iterator)
        assert [first.a] + [r.a for r in rest] == list(range(40))
        assert pool.pinned_pages() == 0  # all pins released on exhaustion

    def test_early_close_releases_the_pin(self):
        pool = BufferPool(size=2)
        relation = stored("r", ["a"], [(i,) for i in range(12)], pool)
        iterator = relation.scan()
        next(iterator)
        assert pool.pinned_pages() == 1
        iterator.close()
        assert pool.pinned_pages() == 0

    def test_pruned_scan_pins_fetched_pages(self):
        pool = BufferPool(size=2)
        relation = stored("r", ["a"], [(i,) for i in range(12)], pool)
        iterator = relation.scan_pruned("a", "<=", 100)
        next(iterator)
        assert pool.pinned_pages() == 1
        list(iterator)
        assert pool.pinned_pages() == 0

    def test_eviction_skips_pinned_frames_and_overflows_when_all_pinned(self):
        pool = BufferPool(size=1)
        relation = stored("r", ["a"], [(i,) for i in range(12)], pool)  # 3 pages
        heap = relation.heap_file
        pool.pin(heap, 0)
        pool.pin(heap, 1)  # both pinned: the 1-frame pool must overflow
        assert pool.resident_pages() == 2
        pool.get_page(heap, 2)  # unpinned page comes and goes
        assert pool.is_resident("r", 0) and pool.is_resident("r", 1)
        pool.unpin("r", 0)
        pool.unpin("r", 1)
        assert pool.resident_pages() <= pool.size + 1  # drains back toward capacity

    def test_unpin_without_pin_is_an_error(self):
        pool = BufferPool(size=2)
        with pytest.raises(StorageError):
            pool.unpin("nope", 0)

    def test_invalidate_drops_even_pinned_frames_but_keeps_the_pin(self):
        pool = BufferPool(size=4)
        relation = stored("r", ["a"], [(i,) for i in range(12)], pool)
        heap = relation.heap_file
        pool.pin(heap, 0)
        pool.get_page(heap, 1)
        pool.invalidate("r")
        # Invalidation is a correctness operation: no frame of the file may
        # stay resident, or later readers would be served stale pages.  The
        # pin count itself survives and unpins without error.
        assert not pool.is_resident("r", 0)
        assert not pool.is_resident("r", 1)
        assert pool.pin_count("r", 0) == 1
        pool.unpin("r", 0)
        assert pool.pinned_pages() == 0

    def test_assign_during_open_scan_does_not_leave_stale_frames(self):
        """Regression: a pinned frame surviving ``invalidate`` used to serve
        the pre-assign page contents to every later scan."""
        pool = BufferPool(size=4)
        relation = stored("r", ["a"], [(0,), (1,), (2,)], pool)
        iterator = relation.scan()
        next(iterator)  # parked on (and pinning) page 0
        relation.assign([{"a": 100}, {"a": 101}, {"a": 102}])
        iterator.close()
        assert sorted(record.a for record in relation.scan()) == [100, 101, 102]


class TestStreamedJoinInterleavedWithScans:
    """The satellite's integration scenario: a long streamed join over the
    paged backend, interleaved with concurrent scans through one shared
    buffer pool, must neither lose its page nor change the join result."""

    def test_interleaved_streamed_join_matches_materialized(self):
        pool = BufferPool(size=2)
        tracker = AccessStatistics()
        left = stored(
            "orders", ["cust", "item"],
            [(i % 7, i) for i in range(48)], pool, tracker=tracker,
        )
        right = stored(
            "customers", ["cust", "tier"],
            [(i, i % 3) for i in range(7)], pool, tracker=tracker,
        )
        noise = stored("noise", ["x"], [(i,) for i in range(48)], pool, tracker=tracker)

        expected = natural_join(left, right)

        stream = stream_natural_join(
            RowStream(left.schema, (record.values for record in left.scan()), label="orders"),
            right,
        )
        rows = []
        iterator = iter(stream)
        for position in range(10):  # drain slowly, thrashing the pool in between
            rows.append(next(iterator))
            consumed = sum(1 for _ in noise.scan())
            assert consumed == 48
        assert pool.pinned_pages() >= 1  # the parked join input stays pinned
        rows.extend(iterator)
        assert pool.pinned_pages() == 0

        streamed = sorted(rows)
        materialized = sorted(record.values for record in expected)
        assert streamed == materialized

    def test_abandoned_join_pipeline_releases_all_pins(self):
        pool = BufferPool(size=2)
        left = stored("l", ["a", "b"], [(i, i) for i in range(24)], pool)
        right = stored("r", ["b", "c"], [(i, i) for i in range(24)], pool)
        stream = stream_natural_join(
            RowStream(left.schema, (record.values for record in left.scan()), label="l"),
            right,
        )
        iterator = iter(stream)
        next(iterator)
        assert pool.pinned_pages() == 1
        iterator.close()  # pipeline shutdown propagates to the scan generator
        assert pool.pinned_pages() == 0
