"""The write-ahead log: framing, LSNs, group commit, the forward scanner,
the crash-point hook, and the value/schema codecs it persists through."""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.errors import RecoveryError, StorageError
from repro.relational.statistics import AccessStatistics
from repro.storage.serialize import (
    decode_key,
    decode_row,
    decode_schema,
    decode_type,
    encode_row,
    encode_schema,
    encode_type,
)
from repro.storage.wal import (
    CrashPoint,
    SimulatedCrash,
    WriteAheadLog,
    scan_wal,
)
from repro.types.scalar import (
    BOOLEAN,
    CHAR,
    INTEGER,
    CharArray,
    Enumeration,
    Subrange,
)
from repro.types.schema import RelationSchema


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendAndScan:
    def test_records_round_trip_in_order(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        wal.append("INSERT", 1, rel="t", row=[1, "a"])
        wal.append("COMMIT", 1)
        wal.flush(fsync=True)
        records, damage = scan_wal(log_path)
        assert damage is None
        assert [r["kind"] for r in records] == ["BEGIN", "INSERT", "COMMIT"]
        assert records[1]["rel"] == "t" and records[1]["row"] == [1, "a"]

    def test_lsns_are_monotone_and_returned(self, log_path):
        wal = WriteAheadLog(log_path, next_lsn=7)
        lsns = [wal.append("BEGIN", 1), wal.append("CLEAR", 1, rel="t")]
        assert lsns == [7, 8]
        assert wal.last_lsn == 8 and wal.next_lsn == 9

    def test_append_is_buffered_until_flush(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        assert scan_wal(log_path) == ([], None)  # nothing reached the OS yet
        assert wal.flushed_lsn == 0
        wal.flush()
        records, _ = scan_wal(log_path)
        assert len(records) == 1
        assert wal.flushed_lsn == 1

    def test_fsync_advances_durable_lsn(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        wal.flush(fsync=False)
        assert wal.flushed_lsn == 1 and wal.durable_lsn == 0
        wal.flush(fsync=True)
        assert wal.durable_lsn == 1

    def test_unknown_kind_is_rejected(self, log_path):
        wal = WriteAheadLog(log_path)
        with pytest.raises(StorageError):
            wal.append("UPSERT", 1)

    def test_closed_log_refuses_appends(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(StorageError):
            wal.append("BEGIN", 1)

    def test_truncate_keeps_lsn_counter_running(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("CHECKPOINT")
        wal.flush(fsync=True)
        wal.truncate()
        assert scan_wal(log_path) == ([], None)
        assert wal.append("BEGIN", 1) == 2  # numbering continues

    def test_truncate_with_pending_records_is_an_error(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        with pytest.raises(StorageError):
            wal.truncate()

    def test_statistics_charged_per_append_and_flush(self, log_path):
        stats = AccessStatistics()
        wal = WriteAheadLog(log_path, statistics=stats)
        wal.append("BEGIN", 1)
        wal.append("COMMIT", 1)
        wal.flush(fsync=True)
        assert stats.wal_records == 2
        assert stats.wal_bytes == os.path.getsize(log_path)
        assert stats.wal_flushes == 1


class TestScannerStopsAtDamage:
    """The forward scanner salvages the intact prefix, whatever the damage."""

    def _write(self, log_path, count=3):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        for _ in range(count - 2):
            wal.append("INSERT", 1, rel="t", row=[1])
        wal.append("COMMIT", 1)
        wal.flush(fsync=True)
        return wal

    def test_torn_tail_bytes(self, log_path):
        self._write(log_path)
        with open(log_path, "ab") as f:
            f.write(b"\x05")  # lone header byte: a torn frame header
        records, damage = scan_wal(log_path)
        assert len(records) == 3
        assert damage is not None and "torn" in damage.reason
        assert damage.last_good_lsn == 3

    def test_truncated_payload(self, log_path):
        self._write(log_path)
        payload = b'{"lsn": 4, "kind": "COMMIT"}'
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(log_path, "ab") as f:
            f.write(frame[:-5])
        records, damage = scan_wal(log_path)
        assert len(records) == 3
        assert "truncated" in damage.reason

    def test_checksum_mismatch(self, log_path):
        self._write(log_path)
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as f:
            f.seek(size - 1)
            original = f.read(1)
            f.seek(size - 1)
            f.write(bytes([original[0] ^ 0xFF]))
        records, damage = scan_wal(log_path)
        assert len(records) == 2  # the last record's payload no longer checks out
        assert "checksum" in damage.reason

    def test_non_monotone_lsn(self, log_path):
        with open(log_path, "wb") as f:
            for lsn in (1, 1):
                payload = json.dumps({"lsn": lsn, "kind": "BEGIN", "txid": 1}).encode()
                f.write(struct.pack("<II", len(payload), zlib.crc32(payload)) + payload)
        records, damage = scan_wal(log_path)
        assert len(records) == 1
        assert "non-monotone" in damage.reason

    def test_undecodable_payload(self, log_path):
        payload = b"\xff\xfe not json"
        with open(log_path, "wb") as f:
            f.write(struct.pack("<II", len(payload), zlib.crc32(payload)) + payload)
        records, damage = scan_wal(log_path)
        assert records == []
        assert damage.last_good_lsn == 0

    def test_missing_file_is_an_empty_log(self, tmp_path):
        assert scan_wal(str(tmp_path / "absent.log")) == ([], None)


class TestCrashPoint:
    def test_counting_mode_never_fires(self, log_path):
        cp = CrashPoint()
        wal = WriteAheadLog(log_path, crash_point=cp)
        wal.append("BEGIN", 1)
        wal.flush(fsync=True)
        wal.flush()
        assert cp.count == 2 and not cp.fired

    def test_clean_crash_at_kth_event(self, log_path):
        cp = CrashPoint(crash_at=1)
        wal = WriteAheadLog(log_path, crash_point=cp)
        wal.append("BEGIN", 1)
        wal.flush()  # event 0 survives
        wal.append("COMMIT", 1)
        with pytest.raises(SimulatedCrash):
            wal.flush()  # event 1 dies before writing
        records, damage = scan_wal(log_path)
        assert damage is None and len(records) == 1  # COMMIT never hit the disk

    def test_crash_is_sticky(self, log_path):
        cp = CrashPoint(crash_at=0)
        wal = WriteAheadLog(log_path, crash_point=cp)
        wal.append("BEGIN", 1)
        with pytest.raises(SimulatedCrash):
            wal.flush()
        with pytest.raises(SimulatedCrash):
            wal.flush()  # the dead process cannot reach its disk again

    def test_torn_crash_leaves_a_half_written_tail(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("BEGIN", 1)
        wal.flush(fsync=True)
        cp = CrashPoint(crash_at=0, torn=True)
        wal.crash_point = cp
        wal.append("INSERT", 1, rel="t", row=[1])
        wal.append("COMMIT", 1)
        clean_size = os.path.getsize(log_path)
        with pytest.raises(SimulatedCrash):
            wal.flush()
        torn_size = os.path.getsize(log_path)
        assert torn_size > clean_size  # a prefix of the frames landed...
        records, damage = scan_wal(log_path)
        assert len(records) == 1  # ...but no complete new record
        assert damage is not None

    def test_simulated_crash_is_not_an_ordinary_exception(self):
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


class TestSerializeCodecs:
    def _schema(self):
        status = Enumeration("statustype", ("assistant", "professor"))
        return RelationSchema(
            "staff",
            [
                ("eno", Subrange(1, 999, "enotype")),
                ("name", CharArray(6, "nametype")),
                ("status", status),
                ("tenured", BOOLEAN),
                ("grade", CHAR),
                ("misc", INTEGER),
            ],
            key=["eno"],
        )

    def test_row_round_trip_through_field_types(self):
        schema = self._schema()
        row = encode_row(
            schema.coerce_values(
                {"eno": 7, "name": "knuth", "status": "professor",
                 "tenured": True, "grade": "A", "misc": -3}
            )
        )
        assert json.loads(json.dumps(row)) == row  # JSON-safe
        decoded = decode_row(schema, row)
        assert decoded[0] == 7
        assert decoded[2].label == "professor"  # enum rebuilt as EnumValue

    def test_key_round_trip(self):
        schema = self._schema()
        assert decode_key(schema, [7]) == (7,)

    def test_arity_mismatches_raise_recovery_error(self):
        schema = self._schema()
        with pytest.raises(RecoveryError):
            decode_row(schema, [1, 2])
        with pytest.raises(RecoveryError):
            decode_key(schema, [1, 2])

    def test_schema_round_trip(self):
        schema = self._schema()
        rebuilt = decode_schema(json.loads(json.dumps(encode_schema(schema))))
        assert rebuilt.name == schema.name
        assert rebuilt.key == schema.key
        assert [f.name for f in rebuilt.fields] == [f.name for f in schema.fields]
        # The enum type carries its labels through the descriptor.
        assert rebuilt.field_type("status").labels == ("assistant", "professor")

    def test_every_scalar_kind_has_a_descriptor(self):
        for scalar in (INTEGER, BOOLEAN, CHAR, Subrange(0, 5, "s"),
                       Enumeration("e", ("a", "b")), CharArray(3, "c")):
            descriptor = encode_type(scalar)
            rebuilt = decode_type(json.loads(json.dumps(descriptor)))
            assert rebuilt.coerce is not None

    def test_malformed_descriptors_raise_recovery_error(self):
        with pytest.raises(RecoveryError):
            decode_type({"kind": "matrix"})
        with pytest.raises(RecoveryError):
            decode_type({"kind": "subrange"})  # missing bounds
        with pytest.raises(RecoveryError):
            decode_schema({"fields": "nope"})
