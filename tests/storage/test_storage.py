"""Unit tests for the simulated paged storage layer."""

import pytest

from repro.errors import StorageError
from repro.relational.record import Record
from repro.relational.statistics import AccessStatistics
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.page import Page
from repro.storage.storedrelation import StoredRelation
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema

SCHEMA = RelationSchema("numbers", [("n", INTEGER)], key=["n"])


def record(n: int) -> Record:
    return Record(SCHEMA, {"n": n})


class TestPage:
    def test_append_and_read(self):
        page = Page(0, capacity=2)
        slot = page.append(record(1))
        assert page.read(slot).n == 1

    def test_capacity_enforced(self):
        page = Page(0, capacity=1)
        page.append(record(1))
        assert page.is_full()
        with pytest.raises(StorageError):
            page.append(record(2))

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            Page(0, capacity=0)

    def test_tombstone(self):
        page = Page(0, capacity=4)
        slot = page.append(record(1))
        page.append(record(2))
        page.tombstone(slot)
        assert page.read(slot) is None
        assert page.live_count() == 1
        assert page.allocated() == 2
        assert [r.n for r in page.records()] == [2]

    def test_tombstone_unallocated_slot_raises(self):
        with pytest.raises(StorageError):
            Page(0).tombstone(0)

    def test_read_bad_slot_raises(self):
        with pytest.raises(StorageError):
            Page(0).read(3)


class TestHeapFile:
    def test_append_allocates_pages(self):
        heap = HeapFile("numbers", page_capacity=2)
        rids = [heap.append(record(i)) for i in range(5)]
        assert heap.page_count == 3
        assert heap.live_count() == 5
        assert rids[0] == RecordId(0, 0)
        assert rids[4].page_number == 2

    def test_read_and_delete(self):
        heap = HeapFile("numbers", page_capacity=2)
        rid = heap.append(record(7))
        assert heap.read(rid).n == 7
        heap.delete(rid)
        assert heap.read(rid) is None
        assert heap.live_count() == 0

    def test_records_iteration_skips_tombstones(self):
        heap = HeapFile("numbers", page_capacity=2)
        keep = heap.append(record(1))
        gone = heap.append(record(2))
        heap.delete(gone)
        assert [r.n for r in heap.records()] == [1]

    def test_unknown_page_raises(self):
        with pytest.raises(StorageError):
            HeapFile("numbers").page(4)

    def test_truncate(self):
        heap = HeapFile("numbers")
        heap.append(record(1))
        heap.truncate()
        assert heap.page_count == 0


class TestBufferPool:
    def test_hits_and_misses(self):
        heap = HeapFile("numbers", page_capacity=1)
        for i in range(3):
            heap.append(record(i))
        pool = BufferPool(size=2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 0)
        pool.get_page(heap, 1)
        assert pool.hits == 1
        assert pool.misses == 2
        assert pool.hit_rate() == pytest.approx(1 / 3)

    def test_lru_eviction(self):
        heap = HeapFile("numbers", page_capacity=1)
        for i in range(3):
            heap.append(record(i))
        pool = BufferPool(size=2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 1)
        pool.get_page(heap, 2)  # evicts page 0
        pool.get_page(heap, 0)  # miss again
        assert pool.misses == 4
        assert pool.resident_pages() == 2

    def test_tracker_integration(self):
        stats = AccessStatistics()
        heap = HeapFile("numbers", page_capacity=1)
        heap.append(record(1))
        pool = BufferPool(size=1, tracker=stats)
        pool.get_page(heap, 0)
        pool.get_page(heap, 0)
        assert stats.pages_read == 2
        assert stats.page_hits == 1

    def test_invalidate(self):
        heap = HeapFile("numbers", page_capacity=1)
        heap.append(record(1))
        pool = BufferPool(size=2)
        pool.get_page(heap, 0)
        pool.invalidate("numbers")
        assert pool.resident_pages() == 0

    def test_minimum_size(self):
        with pytest.raises(StorageError):
            BufferPool(size=0)


class TestStoredRelation:
    def make(self, count: int = 70, page_capacity: int = 32) -> StoredRelation:
        stats = AccessStatistics()
        relation = StoredRelation(
            "numbers", SCHEMA, tracker=stats, page_capacity=page_capacity
        )
        for i in range(count):
            relation.insert({"n": i})
        return relation

    def test_behaves_like_a_relation(self):
        relation = self.make(10)
        assert len(relation) == 10
        assert relation[3].n == 3
        assert relation.ref(5).deref().n == 5

    def test_scan_counts_pages_and_elements(self):
        relation = self.make(70, page_capacity=32)
        assert relation.page_count == 3
        list(relation.scan())
        stats = relation.tracker
        assert stats.scans("numbers") == 1
        assert stats.elements_read("numbers") == 70
        assert stats.pages_read == 3

    def test_repeated_scans_hit_the_buffer_pool(self):
        relation = self.make(40, page_capacity=32)
        list(relation.scan())
        list(relation.scan())
        assert relation.buffer_pool.hits >= 2

    def test_fetch_by_key(self):
        relation = self.make(10)
        assert relation.fetch(4).n == 4
        assert relation.fetch(99) is None

    def test_delete_tombstones_heap(self):
        relation = self.make(5)
        relation.delete_key(2)
        assert relation.heap_file.live_count() == 4
        assert [r.n for r in relation.scan()] == [0, 1, 3, 4]

    def test_assign_truncates_heap(self):
        relation = self.make(5)
        relation.assign([{"n": 100}])
        assert len(relation) == 1
        assert relation.heap_file.live_count() == 1
        assert [r.n for r in relation.scan()] == [100]

    def test_clear(self):
        relation = self.make(5)
        relation.clear()
        assert relation.is_empty()
        assert relation.page_count == 0


class TestZoneMaps:
    def test_zone_bounds_and_invalidations(self):
        page = Page(0, capacity=4)
        page.append(record(5))
        page.append(record(9))
        assert page.zone("n") == (5, 9)
        page.append(record(1))
        assert page.zone("n") == (1, 9)  # append invalidates the cache
        page.tombstone(2)
        assert page.zone("n") == (5, 9)  # tombstone invalidates it too

    def test_zone_of_empty_or_unknown_component(self):
        page = Page(0, capacity=4)
        assert page.zone("n") is None
        page.append(record(3))
        assert page.zone("nonexistent") is None
        assert not page.may_contain("n", "=", 99) or page.may_contain("n", "=", 3)

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 7, True), ("=", 3, False), ("=", 20, False),
            ("<", 6, True), ("<", 5, False),
            ("<=", 5, True), ("<=", 4, False),
            (">", 9, True), (">", 10, False),
            (">=", 10, True), (">=", 11, False),
            ("<>", 7, True),
        ],
    )
    def test_may_contain(self, op, value, expected):
        page = Page(0, capacity=4)
        page.append(record(5))
        page.append(record(10))
        assert page.may_contain("n", op, value) is expected

    def test_not_equal_prunes_single_value_pages(self):
        page = Page(0, capacity=4)
        page.append(record(5))
        page.append(record(5))
        assert not page.may_contain("n", "<>", 5)
        assert page.may_contain("n", "<>", 6)

    def test_scan_pruned_skips_and_counts(self):
        stats = AccessStatistics()
        relation = StoredRelation("numbers", SCHEMA, tracker=stats, page_capacity=8)
        for i in range(40):  # five pages: 0-7, 8-15, ..., 32-39
            relation.insert({"n": i})
        rows = [r.n for r in relation.scan_pruned("n", "<=", 10)]
        # Conservative: the two pages that may contain matches are yielded
        # in full (0-7 and 8-15); the caller filters records.
        assert rows == list(range(16))
        assert stats.pages_skipped == 3
        assert stats.pages_read == 2
        # Pruning never loses rows: filtering the pruned scan equals a scan.
        full = [r.n for r in relation.scan() if r.n <= 10]
        assert [n for n in rows if n <= 10] == full

    def test_scan_pruned_reflects_mutations(self):
        stats = AccessStatistics()
        relation = StoredRelation("numbers", SCHEMA, tracker=stats, page_capacity=4)
        for i in range(8):
            relation.insert({"n": i})
        assert [r.n for r in relation.scan_pruned("n", ">=", 6)] == [4, 5, 6, 7]
        relation.delete_key((6,))
        relation.delete_key((7,))
        assert [r.n for r in relation.scan_pruned("n", ">=", 6)] == []
        relation.insert({"n": 9})
        assert 9 in [r.n for r in relation.scan_pruned("n", ">=", 6)]
