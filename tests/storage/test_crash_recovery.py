"""The fault-injection harness: crash the database at every write the
scripted workload performs — cleanly and with torn tails — and prove that
reopening always recovers exactly a committed prefix, byte-for-byte equal
(heap page layout, zone maps, schemas, index catalog) to a never-crashed
control run stopped at the same durability point."""

from __future__ import annotations

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DURABILITY_COMMIT
from repro.relational.database import Database
from repro.storage.serialize import encode_schema
from repro.storage.wal import CrashPoint, SimulatedCrash
from repro.types.scalar import INTEGER, CharArray

# ----------------------------------------------------------------------------------
# The scripted workload.  Every numbered point is a *durability point*: after
# it, the on-disk state is one the recovery contract must be able to return.


def run_workload(directory, crash_point=None, at_point=None):
    """Run the scripted workload; call ``at_point(n)`` after durability point n.

    Every statement that makes state durable on its own — the open, each DDL
    statement (DDL is not transactional: each one checkpoints separately),
    each commit, each rollback, the explicit checkpoint, the close — is
    followed by a durability point.
    """
    point = 0

    def mark():
        nonlocal point
        point += 1
        if at_point is not None:
            at_point(point)

    def commit(database, journal):
        database.commit_transaction(journal)
        database.end_transaction(journal)

    database = Database.open(
        directory, durability=DURABILITY_COMMIT, crash_point=crash_point
    )
    mark()  # opened: empty catalog, initial checkpoint on disk
    relation = database.create_relation(
        "items",
        [("k", INTEGER), ("label", CharArray(6, "itemlabel"))],
        key=["k"],
        page_capacity=3,
    )
    mark()
    database.create_index("items", "label")
    mark()
    database.create_index("items", "k", operator="<=")
    mark()
    journal = database.begin_transaction()
    for k in range(6):
        relation.insert({"k": k, "label": f"row{k}"})
    commit(database, journal)
    mark()
    journal = database.begin_transaction()
    relation.delete_key(2)
    relation.delete_key(4)
    relation.insert({"k": 6, "label": "late"})
    commit(database, journal)
    mark()
    # An aborted transaction: must never be visible after any crash.
    journal = database.begin_transaction()
    relation.insert({"k": 99, "label": "ghost"})
    relation.delete_key(0)
    database.abort_transaction(journal)
    database.end_transaction(journal)
    journal.rollback()
    mark()
    database.checkpoint()
    mark()
    journal = database.begin_transaction()
    relation.assign(
        [{"k": k, "label": f"new{k}"} for k in (1, 3, 5, 7)]
    )
    commit(database, journal)
    mark()
    journal = database.begin_transaction()
    relation.clear()
    relation.insert({"k": 10, "label": "final"})
    commit(database, journal)
    mark()
    database.close()
    mark()


# ----------------------------------------------------------------------------------
# Canonical on-disk state.  Both sides of every comparison go through
# Database.open first, so recovery's own normalisation (replay + repack +
# fresh checkpoint) applies identically to control and crashed runs.


def canonical_state(database) -> dict:
    relations = {}
    for relation in database.relations():
        heap = getattr(relation, "_heap", None)
        pages, zones = [], []
        if heap is not None:
            for page in heap.pages():
                pages.append([list(record.values) for record in page.records()])
                zones.append(
                    {
                        field.name: page.zone(field.name)
                        for field in relation.schema.fields
                    }
                )
        relations[relation.name] = {
            "schema": encode_schema(relation.schema),
            "pages": pages,
            "zones": zones,
        }
    indexes = sorted(
        (name, field, type(database.index_for(name, field)).__name__)
        for name, field in database.indexes()
    )
    return {"relations": relations, "indexes": indexes}


def recovered_state(directory) -> dict:
    database = Database.open(directory)
    try:
        return canonical_state(database)
    finally:
        database.close()


@pytest.fixture(scope="module")
def control_states(tmp_path_factory):
    """Canonical state at every durability point of a never-crashed run."""
    base = tmp_path_factory.mktemp("control")
    live = str(base / "live")
    copies = {}

    def snapshot(point):
        copies[point] = str(base / f"point{point}")
        shutil.copytree(live, copies[point])

    run_workload(live, at_point=snapshot)
    return {point: recovered_state(path) for point, path in copies.items()}


def _total_crash_events(tmp_path_factory) -> tuple[int, list[str]]:
    probe = CrashPoint()  # counting mode: records events, never fires
    run_workload(str(tmp_path_factory.mktemp("probe") / "db"), crash_point=probe)
    return probe.count, probe.events


class TestCrashSweep:
    """The headline guarantee, k-swept over every write the workload makes."""

    def test_every_crash_point_recovers_a_committed_prefix(
        self, tmp_path_factory, control_states
    ):
        total, events = _total_crash_events(tmp_path_factory)
        assert total >= 20, f"workload too small to be interesting: {events}"
        failures = []
        for torn in (False, True):
            for k in range(total):
                directory = str(
                    tmp_path_factory.mktemp("sweep") / f"k{k}-{'torn' if torn else 'clean'}"
                )
                crash_point = CrashPoint(crash_at=k, torn=torn)
                with pytest.raises(SimulatedCrash):
                    run_workload(directory, crash_point=crash_point)
                state = recovered_state(directory)
                if state not in control_states.values():
                    failures.append((k, torn, crash_point.events[k]))
        assert not failures, (
            "recovered state matched no durability point after crashes at: "
            f"{failures}"
        )

    def test_recovery_is_idempotent_across_reopens(self, tmp_path_factory):
        # Crash mid-run, recover, and reopen twice more: the second and
        # third opens must find a clean log and identical state.
        directory = str(tmp_path_factory.mktemp("idem") / "db")
        with pytest.raises(SimulatedCrash):
            run_workload(directory, crash_point=CrashPoint(crash_at=12, torn=True))
        first = recovered_state(directory)
        database = Database.open(directory)
        assert database.recovery_report.clean  # the crash was absorbed
        database.close()
        assert recovered_state(directory) == first

    def test_aborted_transaction_never_resurfaces(self, tmp_path_factory, control_states):
        # Every durability point the sweep can land on excludes key 99.
        for state in control_states.values():
            items = state["relations"].get("items")
            if items is None:
                continue
            for page in items["pages"]:
                assert all(row[0] != 99 for row in page)


# ----------------------------------------------------------------------------------
# Property: random workloads, random crash points — recovery always lands on
# the committed prefix predicted by a plain in-memory model.

_OPS = st.lists(
    st.tuples(
        st.sampled_from(("insert", "delete", "assign", "clear", "abort")),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=10,
)


def _apply(relation, model, op, key, value):
    if op == "insert":
        if key in model:
            return
        relation.insert({"k": key, "label": f"v{value}"})
        model[key] = f"v{value}"
    elif op == "delete":
        relation.delete_key(key)
        model.pop(key, None)
    elif op == "assign":
        replacement = dict(model)
        replacement[key] = f"v{value}"
        relation.assign(
            [{"k": k, "label": label} for k, label in replacement.items()]
        )
        model.clear()
        model.update(replacement)
    elif op == "clear":
        relation.clear()
        model.clear()


@given(ops=_OPS, crash_at=st.integers(min_value=0, max_value=80), torn=st.booleans())
@settings(deadline=None, max_examples=25)
def test_random_interleavings_recover_a_committed_prefix(ops, crash_at, torn):
    directory = tempfile.mkdtemp(prefix="crash-prop-")
    try:
        committed_states = [None, {}]  # before the catalog exists; after
        model: dict[int, str] = {}
        try:
            database = Database.open(
                directory,
                durability=DURABILITY_COMMIT,
                crash_point=CrashPoint(crash_at=crash_at, torn=torn),
            )
            relation = database.create_relation(
                "items",
                [("k", INTEGER), ("label", CharArray(4, "lbl"))],
                key=["k"],
                page_capacity=3,
            )
            for op, key, value in ops:
                journal = database.begin_transaction()
                if op == "abort":
                    relation.insert({"k": 50 + key, "label": "no"})
                    database.abort_transaction(journal)
                    database.end_transaction(journal)
                    journal.rollback()
                else:
                    _apply(relation, model, op, key, value)
                    database.commit_transaction(journal)
                    database.end_transaction(journal)
                    committed_states.append(dict(model))
            database.close()
        except SimulatedCrash:
            pass
        recovered = Database.open(directory)
        try:
            if "items" in recovered.relation_names():
                state = {
                    r.k: r.label.rstrip() for r in recovered.relation("items")
                }
            else:
                state = None
            assert state in committed_states, (
                f"recovered {state!r} is not a committed prefix of "
                f"{committed_states!r}"
            )
        finally:
            recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
