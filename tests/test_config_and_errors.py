"""Unit tests for the strategy options and the exception hierarchy."""

import pytest

from repro import errors
from repro.config import StrategyOptions


class TestStrategyOptions:
    def test_defaults_enable_all_paper_strategies(self):
        options = StrategyOptions()
        assert options.parallel_collection
        assert options.one_step_nested
        assert options.extended_ranges
        assert options.collection_phase_quantifiers
        assert not options.general_range_extensions
        assert not options.separate_existential_conjunctions

    def test_none_disables_everything(self):
        options = StrategyOptions.none()
        assert not options.parallel_collection
        assert not options.one_step_nested
        assert not options.extended_ranges
        assert not options.collection_phase_quantifiers
        assert not options.use_permanent_indexes

    def test_only_enables_selected_strategies(self):
        options = StrategyOptions.only(extended_ranges=True)
        assert options.extended_ranges
        assert not options.parallel_collection

    def test_with_creates_a_modified_copy(self):
        base = StrategyOptions.all_strategies()
        changed = base.with_(collection_phase_quantifiers=False)
        assert base.collection_phase_quantifiers
        assert not changed.collection_phase_quantifiers

    def test_options_are_immutable(self):
        with pytest.raises(Exception):
            StrategyOptions().parallel_collection = False

    def test_describe_lists_enabled_strategies(self):
        assert "S3 extended ranges" in StrategyOptions.all_strategies().describe()
        assert StrategyOptions.none().describe() == "no strategies"

    def test_equality(self):
        assert StrategyOptions() == StrategyOptions()
        assert StrategyOptions.none() != StrategyOptions()


class TestErrorHierarchy:
    def test_all_errors_derive_from_pascalr_error(self):
        for name in errors.__all__:
            error_class = getattr(errors, name)
            assert issubclass(error_class, errors.PascalRError)

    def test_missing_element_is_also_a_key_error(self):
        assert issubclass(errors.MissingElementError, KeyError)

    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert error.line is None

    def test_subsystem_relationships(self):
        assert issubclass(errors.ScopeError, errors.CalculusError)
        assert issubclass(errors.SchemaError, errors.TypeSystemError)
        assert issubclass(errors.DuplicateKeyError, errors.RelationError)
        assert issubclass(errors.LexError, errors.ParseError)
