"""Satellite: N threads, one connection — results identical to serial execution.

A shared :class:`Connection` serializes compilation and every pipeline step
on one reentrant execution lock, so concurrent cursors (including open,
half-drained streaming cursors) plus a writer session must neither corrupt
each other's result sets nor the shared access counters.  Each reader
thread's fetched rows are compared byte-for-byte against the serial
baseline; the writer hammers begin/insert/rollback (and some commits) on a
scratch relation the queries never touch.
"""

from __future__ import annotations

import threading

from repro import connect
from repro.types.scalar import INTEGER
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PROFESSORS_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
)
from repro.workloads.university import build_university_database

_QUERIES = (
    EXAMPLE_21_TEXT,
    PROFESSORS_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
)

_READERS = 4
_ROUNDS = 6
_WRITER_ROUNDS = 24


def test_thread_hammer_matches_serial_execution():
    database = build_university_database(scale=2)
    scratch = database.create_relation(
        "scratch", [("k", INTEGER), ("v", INTEGER)], key=["k"]
    )
    connection = connect(database)

    # Serial baseline, one query at a time on an otherwise idle connection.
    baseline = {
        query: [record.values for record in connection.execute(query).fetchall()]
        for query in _QUERIES
    }

    errors: list[BaseException] = []
    mismatches: list[tuple] = []
    start = threading.Barrier(_READERS + 2)

    def reader(thread_id: int) -> None:
        try:
            start.wait()
            cursor = connection.cursor()
            for round_number in range(_ROUNDS):
                query = _QUERIES[(thread_id + round_number) % len(_QUERIES)]
                cursor.execute(query)
                rows: list = []
                # Mixed fetch styles: a couple of single-row pulls keep the
                # pipeline open across other threads' executions, then a
                # batched drain.
                for _ in range(2):
                    record = cursor.fetchone()
                    if record is not None:
                        rows.append(record.values)
                rows.extend(
                    record.values for record in cursor.fetchmany(3)
                )
                rows.extend(record.values for record in cursor.fetchall())
                if rows != baseline[query]:
                    mismatches.append((thread_id, round_number, query))
        except BaseException as exc:  # noqa: BLE001 - surfaced to the assert
            errors.append(exc)

    def writer() -> None:
        try:
            start.wait()
            session = connection.session()
            for i in range(_WRITER_ROUNDS):
                session.begin()
                scratch.insert({"k": i, "v": i * i})
                if i % 3 == 0:
                    session.commit()
                else:
                    session.rollback()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(thread_id,), name=f"reader-{thread_id}")
        for thread_id in range(_READERS)
    ]
    threads.append(threading.Thread(target=writer, name="writer"))
    for thread in threads:
        thread.start()
    start.wait()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), f"{thread.name} did not finish"

    assert not errors, errors
    assert not mismatches, mismatches

    # The writer's commits (every third round) landed; the rollbacks did not.
    committed = sorted(record["k"] for record in scratch.elements())
    assert committed == [i for i in range(_WRITER_ROUNDS) if i % 3 == 0]

    # No counter corruption: every shared scalar counter is a non-negative
    # int, and the mutation epoch kept advancing monotonically.
    snapshot = database.statistics.as_dict()
    for name, value in snapshot.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            assert value >= 0, (name, value)
    assert database.statistics.mutation_epoch > 0
    assert not database.in_transaction
    connection.close()
