"""The asyncio front door: ``aconnect`` / AsyncConnection / AsyncSession / AsyncCursor.

Every blocking call is one executor hop over the thread-safe synchronous
connection; these tests pin the surface — fetch variants, ``async for``,
context-manager transaction semantics, close — and that results are
byte-identical to the synchronous path.
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro import ConnectionClosedError, connect
from repro.types.scalar import INTEGER
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    PROFESSORS_TEXT,
    STATUS_PARAM_TEXT,
)
from repro.workloads.university import figure1_database


def _run(coroutine):
    return asyncio.run(coroutine)


def test_async_rows_match_the_synchronous_path():
    async def fetch() -> list:
        async with await repro.aconnect(figure1_database()) as connection:
            cursor = await connection.execute(EXAMPLE_21_TEXT)
            return [record.values for record in await cursor.fetchall()]

    sync_rows = [
        record.values
        for record in connect(figure1_database()).execute(EXAMPLE_21_TEXT).fetchall()
    ]
    assert _run(fetch()) == sync_rows


def test_async_iteration_and_fetch_variants():
    async def drive() -> None:
        async with await repro.aconnect(figure1_database()) as connection:
            cursor = await connection.execute(PROFESSORS_TEXT)
            first = await cursor.fetchone()
            assert first is not None
            batch = await cursor.fetchmany(2)
            assert len(batch) <= 2
            rest = await cursor.fetchall()
            assert cursor.rowcount == 1 + len(batch) + len(rest)

            streamed = [record async for record in await connection.execute(PROFESSORS_TEXT)]
            assert len(streamed) == cursor.rowcount
            assert cursor.description[0].name == "enr"

    _run(drive())


def test_async_parameter_binding():
    async def drive() -> list:
        async with await repro.aconnect(figure1_database()) as connection:
            cursor = await connection.execute(
                STATUS_PARAM_TEXT, {"status": "professor"}
            )
            return [record.values for record in await cursor.fetchall()]

    assert _run(drive())


def test_async_session_commits_on_clean_exit_and_rolls_back_on_error():
    async def drive() -> tuple[set, set]:
        database = figure1_database()
        database.create_relation("scratch", [("k", INTEGER)], key=["k"])
        async with await repro.aconnect(database) as connection:
            async with connection.session():
                database.relation("scratch").insert({"k": 1})
            after_commit = {
                record.values
                for record in await (
                    await connection.execute("[<s.k> OF EACH s IN scratch: (s.k >= 0)]")
                ).fetchall()
            }
            with pytest.raises(RuntimeError):
                async with connection.session():
                    database.relation("scratch").insert({"k": 2})
                    raise RuntimeError("boom")
            after_rollback = {
                record.values
                for record in await (
                    await connection.execute("[<s.k> OF EACH s IN scratch: (s.k >= 0)]")
                ).fetchall()
            }
            return after_commit, after_rollback

    after_commit, after_rollback = _run(drive())
    assert after_commit == {(1,)}
    assert after_rollback == {(1,)}


def test_async_close_shuts_the_connection_down():
    async def drive():
        connection = await repro.aconnect(figure1_database())
        cursor = await connection.execute(PROFESSORS_TEXT)
        await cursor.fetchall()
        await connection.close()
        assert connection.closed
        await connection.close()  # double close is a no-op
        with pytest.raises(ConnectionClosedError):
            await connection.execute(PROFESSORS_TEXT)

    _run(drive())


def test_gathered_cursors_interleave_on_one_connection():
    async def drive() -> list[list]:
        async with await repro.aconnect(figure1_database()) as connection:
            async def one(_: int) -> list:
                cursor = await connection.execute(EXAMPLE_21_TEXT)
                rows = []
                async for record in cursor:
                    rows.append(record.values)
                    await asyncio.sleep(0)  # force interleaving mid-drain
                return rows

            return await asyncio.gather(*(one(n) for n in range(6)))

    results = _run(drive())
    assert all(rows == results[0] for rows in results)
    assert results[0]
