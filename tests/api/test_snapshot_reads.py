"""Tentpole: multi-version snapshot reads — pinned views, COW, cursor routing.

The MVCC contract of ``relational/mvcc.py`` and its connection front door:

* **Pin rule** — a pin captures, per relation, the committed element dict and
  contents version; pinning copies nothing.
* **Copy-on-write rule** — a writer never mutates a dict a live snapshot may
  hold: it copies first, so pinned views are immutable by construction.
* **Committed overlay** — a pin taken while a transaction is journaling sees
  the pre-transaction contents and data version of every relation.
* **Routing** — connection-level cursors execute on a snapshot (outside the
  execution lock) when ``ServiceOptions.snapshot_reads`` is on; session
  cursors keep the serialized live path so a transaction reads its writes.

Equivalence is the acceptance bar: snapshot rows must be byte-identical to
serialized execution across the named-query matrix, on both backends.
"""

from __future__ import annotations

import pytest

from repro import ServiceOptions, SnapshotError, connect
from repro.relational.database import Database
from repro.types.scalar import INTEGER
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    NO_1977_PAPERS_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PROFESSORS_TEXT,
    PUBLISHING_TEACHERS_TEXT,
    SENIORITY_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
)
from repro.workloads.university import build_university_database, figure1_database

_MATRIX = (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    PROFESSORS_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
    NO_1977_PAPERS_TEXT,
    SENIORITY_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PUBLISHING_TEACHERS_TEXT,
)


def _scratch_database(paged: bool) -> Database:
    database = Database("mvcc", paged=paged)
    database.create_relation(
        "r",
        [("k", INTEGER), ("v", INTEGER)],
        key=["k"],
        page_capacity=4,
        elements=[{"k": k, "v": k * 10} for k in range(4)],
    )
    return database


def _rows(relation) -> set[tuple]:
    return {tuple(record.values) for record in relation.scan()}


class TestPinSemantics:
    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_pin_is_isolated_from_later_writes(self, paged):
        database = _scratch_database(paged)
        before = _rows(database.relation("r"))
        snapshot = database.pin_snapshot()
        database.relation("r").insert({"k": 99, "v": 990})
        database.relation("r").delete_key(0)
        assert _rows(snapshot.relation("r")) == before
        assert _rows(database.relation("r")) != before
        snapshot.release()

    def test_pin_during_transaction_sees_pre_transaction_state(self):
        database = _scratch_database(paged=False)
        before = _rows(database.relation("r"))
        committed_version = database.statistics.mutation_epoch
        journal = database.begin_transaction()
        database.relation("r").insert({"k": 50, "v": 500})
        database.relation("r").delete_key(1)
        snapshot = database.pin_snapshot()
        # The overlay serves the committed image, not the journaled one.
        assert _rows(snapshot.relation("r")) == before
        assert snapshot.data_version == committed_version
        database.commit_transaction(journal)
        database.end_transaction(journal)
        # The released transaction does not retroactively change the pin.
        assert _rows(snapshot.relation("r")) == before
        snapshot.release()
        after = database.pin_snapshot()
        assert _rows(after.relation("r")) == _rows(database.relation("r"))
        assert after.data_version == database.statistics.mutation_epoch
        after.release()

    def test_pin_survives_rollback(self):
        database = _scratch_database(paged=False)
        before = _rows(database.relation("r"))
        journal = database.begin_transaction()
        database.relation("r").clear()
        snapshot = database.pin_snapshot()
        database.abort_transaction(journal)
        database.end_transaction(journal)
        journal.rollback()
        assert _rows(snapshot.relation("r")) == before
        assert _rows(database.relation("r")) == before
        snapshot.release()

    def test_snapshot_relations_refuse_writes(self):
        database = _scratch_database(paged=False)
        with database.pin_snapshot() as snapshot:
            view = snapshot.relation("r")
            for mutate in (
                lambda: view.insert({"k": 7, "v": 70}),
                lambda: view.delete_key(0),
                lambda: view.clear(),
                lambda: view.assign([]),
            ):
                with pytest.raises(SnapshotError):
                    mutate()

    def test_release_is_idempotent_and_tracked(self):
        database = _scratch_database(paged=False)
        registry = database._snapshots
        snapshot = database.pin_snapshot()
        assert registry.active == 1
        snapshot.release()
        snapshot.release()
        assert registry.active == 0
        assert snapshot.released

    def test_relation_versions_move_only_with_their_relation(self):
        database = _scratch_database(paged=False)
        database.create_relation("other", [("k", INTEGER)], key=["k"])
        first = database.pin_snapshot()
        first.release()
        database.relation("other").insert({"k": 1})
        second = database.pin_snapshot()
        second.release()
        assert (
            second.relation_versions["r"] == first.relation_versions["r"]
        ), "untouched relation must keep its contents version"
        assert second.relation_versions["other"] > first.relation_versions["other"]


class TestCursorRouting:
    def test_connection_cursor_runs_on_a_snapshot(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert cursor._snapshot
        assert cursor.fetchall()
        connection.close()

    def test_snapshot_reads_off_keeps_the_live_path(self, figure1):
        connection = connect(
            figure1, service_options=ServiceOptions(snapshot_reads=False)
        )
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert not cursor._snapshot
        assert cursor.fetchall()
        connection.close()

    def test_session_cursor_reads_its_own_writes(self, figure1):
        connection = connect(figure1)
        scratch = figure1.create_relation(
            "scratch", [("k", INTEGER), ("v", INTEGER)], key=["k"]
        )
        with connection.session() as session:
            scratch.insert({"k": 1, "v": 10})
            cursor = session.cursor().execute(
                "[<s.k> OF EACH s IN scratch: (s.v = 10)]"
            )
            assert not cursor._snapshot
            assert [record.values for record in cursor.fetchall()] == [(1,)]
            # A concurrent connection-level cursor must NOT see the
            # uncommitted insert: its pin serves the committed overlay.
            outside = connection.cursor().execute(
                "[<s.k> OF EACH s IN scratch: (s.v = 10)]"
            )
            assert outside._snapshot
            assert outside.fetchall() == []
        connection.close()

    def test_open_snapshot_cursor_is_unmoved_by_writer_commits(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(EXAMPLE_21_TEXT)
        first = cursor.fetchone()
        assert first is not None
        with connection.session():
            figure1.relation("employees").delete_key("white")
        rest = cursor.fetchall()
        fresh = connect(figure1_database()).execute(EXAMPLE_21_TEXT).fetchall()
        assert [first.values, *[r.values for r in rest]] == [
            r.values for r in fresh
        ]
        connection.close()

    def test_drained_snapshot_cursor_releases_its_pin(self, figure1):
        connection = connect(figure1)
        registry = figure1._snapshots
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert registry.active == 1
        cursor.fetchall()
        assert registry.active == 0
        connection.close()

    def test_discarded_snapshot_cursor_releases_its_pin(self, figure1):
        connection = connect(figure1)
        registry = figure1._snapshots
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        cursor.fetchone()
        cursor.close()
        assert registry.active == 0
        connection.close()

    def test_snapshot_statistics_merge_into_the_shared_tracker(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        rows = cursor.fetchall()
        private = cursor.statistics["relations"]["employees"]
        assert private["elements_read"] >= len(rows)
        shared = figure1.statistics.as_dict()["relations"]["employees"]
        assert shared["elements_read"] >= private["elements_read"]
        connection.close()


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_snapshot_rows_byte_identical_to_serialized(self, paged):
        for query in _MATRIX:
            fetched = {}
            for snapshot_reads in (False, True):
                database = build_university_database(scale=2, paged=paged)
                connection = connect(
                    database,
                    service_options=ServiceOptions(snapshot_reads=snapshot_reads),
                )
                fetched[snapshot_reads] = [
                    record.values for record in connection.execute(query).fetchall()
                ]
                connection.close()
            assert fetched[True] == fetched[False], query

    def test_repeat_snapshot_executions_are_deterministic(self, figure1):
        connection = connect(figure1)
        runs = [
            [r.values for r in connection.execute(EXAMPLE_21_TEXT).fetchall()]
            for _ in range(5)
        ]
        assert all(run == runs[0] for run in runs)
        connection.close()

    def test_snapshot_collection_memo_survives_unrelated_writes(self, figure1):
        scratch = figure1.create_relation(
            "scratch", [("k", INTEGER)], key=["k"]
        )
        connection = connect(figure1)
        first = connection.execute(EXAMPLE_21_TEXT).fetchall()
        prepared = connection.service._admit(EXAMPLE_21_TEXT, None)
        assert len(prepared._snapshot_collections) == 1
        with connection.session():
            scratch.insert({"k": 1})
        cursor = connection.cursor().execute(EXAMPLE_21_TEXT)
        rows = cursor.fetchall()
        assert [r.values for r in rows] == [r.values for r in first]
        # The memoized collection served the repeat: no fresh employee scan.
        assert cursor.statistics["relations"].get("employees", {}).get(
            "scans", 0
        ) == 0
        connection.close()

    def test_snapshot_collection_memo_invalidates_on_relevant_writes(self, figure1):
        connection = connect(figure1)
        baseline = [
            r.values for r in connection.execute(PUBLISHING_TEACHERS_TEXT).fetchall()
        ]
        assert baseline
        with connection.session():
            figure1.relation("timetable").clear()
        assert connection.execute(PUBLISHING_TEACHERS_TEXT).fetchall() == []
        connection.close()
