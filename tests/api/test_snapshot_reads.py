"""Tentpole: multi-version snapshot reads — pinned views, COW, cursor routing.

The MVCC contract of ``relational/mvcc.py`` and its connection front door:

* **Pin rule** — a pin captures, per relation, the committed element dict and
  contents version; pinning copies nothing.
* **Copy-on-write rule** — a writer never mutates a dict a live snapshot may
  hold: it copies first, so pinned views are immutable by construction.
* **Committed overlay** — a pin taken while a transaction is journaling sees
  the pre-transaction contents and data version of every relation.
* **Routing** — connection-level cursors execute on a snapshot (outside the
  execution lock) when ``ServiceOptions.snapshot_reads`` is on; session
  cursors keep the serialized live path so a transaction reads its writes.

Equivalence is the acceptance bar: snapshot rows must be byte-identical to
serialized execution across the named-query matrix, on both backends.
"""

from __future__ import annotations

import pytest

from repro import ServiceOptions, SnapshotError, connect
from repro.relational.database import Database
from repro.types.scalar import INTEGER
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    NO_1977_PAPERS_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PROFESSORS_TEXT,
    PUBLISHING_TEACHERS_TEXT,
    SENIORITY_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
)
from repro.workloads.university import build_university_database, figure1_database

_MATRIX = (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    PROFESSORS_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
    NO_1977_PAPERS_TEXT,
    SENIORITY_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PUBLISHING_TEACHERS_TEXT,
)


def _scratch_database(paged: bool) -> Database:
    database = Database("mvcc", paged=paged)
    database.create_relation(
        "r",
        [("k", INTEGER), ("v", INTEGER)],
        key=["k"],
        page_capacity=4,
        elements=[{"k": k, "v": k * 10} for k in range(4)],
    )
    return database


def _rows(relation) -> set[tuple]:
    return {tuple(record.values) for record in relation.scan()}


class TestPinSemantics:
    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_pin_is_isolated_from_later_writes(self, paged):
        database = _scratch_database(paged)
        before = _rows(database.relation("r"))
        snapshot = database.pin_snapshot()
        database.relation("r").insert({"k": 99, "v": 990})
        database.relation("r").delete_key(0)
        assert _rows(snapshot.relation("r")) == before
        assert _rows(database.relation("r")) != before
        snapshot.release()

    def test_pin_during_transaction_sees_pre_transaction_state(self):
        database = _scratch_database(paged=False)
        before = _rows(database.relation("r"))
        committed_version = database.statistics.mutation_epoch
        journal = database.begin_transaction()
        database.relation("r").insert({"k": 50, "v": 500})
        database.relation("r").delete_key(1)
        snapshot = database.pin_snapshot()
        # The overlay serves the committed image, not the journaled one.
        assert _rows(snapshot.relation("r")) == before
        assert snapshot.data_version == committed_version
        database.commit_transaction(journal)
        database.end_transaction(journal)
        # The released transaction does not retroactively change the pin.
        assert _rows(snapshot.relation("r")) == before
        snapshot.release()
        after = database.pin_snapshot()
        assert _rows(after.relation("r")) == _rows(database.relation("r"))
        assert after.data_version == database.statistics.mutation_epoch
        after.release()

    def test_pin_survives_rollback(self):
        database = _scratch_database(paged=False)
        before = _rows(database.relation("r"))
        journal = database.begin_transaction()
        database.relation("r").clear()
        snapshot = database.pin_snapshot()
        database.abort_transaction(journal)
        database.end_transaction(journal)
        journal.rollback()
        assert _rows(snapshot.relation("r")) == before
        assert _rows(database.relation("r")) == before
        snapshot.release()

    def test_snapshot_relations_refuse_writes(self):
        database = _scratch_database(paged=False)
        with database.pin_snapshot() as snapshot:
            view = snapshot.relation("r")
            for mutate in (
                lambda: view.insert({"k": 7, "v": 70}),
                lambda: view.delete_key(0),
                lambda: view.clear(),
                lambda: view.assign([]),
            ):
                with pytest.raises(SnapshotError):
                    mutate()

    def test_release_is_idempotent_and_tracked(self):
        database = _scratch_database(paged=False)
        registry = database._snapshots
        snapshot = database.pin_snapshot()
        assert registry.active == 1
        snapshot.release()
        snapshot.release()
        assert registry.active == 0
        assert snapshot.released

    def test_relation_versions_move_only_with_their_relation(self):
        database = _scratch_database(paged=False)
        database.create_relation("other", [("k", INTEGER)], key=["k"])
        first = database.pin_snapshot()
        first.release()
        database.relation("other").insert({"k": 1})
        second = database.pin_snapshot()
        second.release()
        assert (
            second.relation_versions["r"] == first.relation_versions["r"]
        ), "untouched relation must keep its contents version"
        assert second.relation_versions["other"] > first.relation_versions["other"]


class TestCursorRouting:
    def test_connection_cursor_runs_on_a_snapshot(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert cursor._snapshot
        assert cursor.fetchall()
        connection.close()

    def test_snapshot_reads_off_keeps_the_live_path(self, figure1):
        connection = connect(
            figure1, service_options=ServiceOptions(snapshot_reads=False)
        )
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert not cursor._snapshot
        assert cursor.fetchall()
        connection.close()

    def test_session_cursor_reads_its_own_writes(self, figure1):
        connection = connect(figure1)
        scratch = figure1.create_relation(
            "scratch", [("k", INTEGER), ("v", INTEGER)], key=["k"]
        )
        with connection.session() as session:
            scratch.insert({"k": 1, "v": 10})
            cursor = session.cursor().execute(
                "[<s.k> OF EACH s IN scratch: (s.v = 10)]"
            )
            assert not cursor._snapshot
            assert [record.values for record in cursor.fetchall()] == [(1,)]
            # A concurrent connection-level cursor must NOT see the
            # uncommitted insert: its pin serves the committed overlay.
            outside = connection.cursor().execute(
                "[<s.k> OF EACH s IN scratch: (s.v = 10)]"
            )
            assert outside._snapshot
            assert outside.fetchall() == []
        connection.close()

    def test_open_snapshot_cursor_is_unmoved_by_writer_commits(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(EXAMPLE_21_TEXT)
        first = cursor.fetchone()
        assert first is not None
        with connection.session():
            figure1.relation("employees").delete_key("white")
        rest = cursor.fetchall()
        fresh = connect(figure1_database()).execute(EXAMPLE_21_TEXT).fetchall()
        assert [first.values, *[r.values for r in rest]] == [
            r.values for r in fresh
        ]
        connection.close()

    def test_drained_snapshot_cursor_releases_its_pin(self, figure1):
        connection = connect(figure1)
        registry = figure1._snapshots
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert registry.active == 1
        cursor.fetchall()
        assert registry.active == 0
        connection.close()

    def test_discarded_snapshot_cursor_releases_its_pin(self, figure1):
        connection = connect(figure1)
        registry = figure1._snapshots
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        cursor.fetchone()
        cursor.close()
        assert registry.active == 0
        connection.close()

    def test_snapshot_statistics_merge_into_the_shared_tracker(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        rows = cursor.fetchall()
        private = cursor.statistics["relations"]["employees"]
        assert private["elements_read"] >= len(rows)
        shared = figure1.statistics.as_dict()["relations"]["employees"]
        assert shared["elements_read"] >= private["elements_read"]
        connection.close()


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_snapshot_rows_byte_identical_to_serialized(self, paged):
        for query in _MATRIX:
            fetched = {}
            for snapshot_reads in (False, True):
                database = build_university_database(scale=2, paged=paged)
                connection = connect(
                    database,
                    service_options=ServiceOptions(snapshot_reads=snapshot_reads),
                )
                fetched[snapshot_reads] = [
                    record.values for record in connection.execute(query).fetchall()
                ]
                connection.close()
            assert fetched[True] == fetched[False], query

    def test_repeat_snapshot_executions_are_deterministic(self, figure1):
        connection = connect(figure1)
        runs = [
            [r.values for r in connection.execute(EXAMPLE_21_TEXT).fetchall()]
            for _ in range(5)
        ]
        assert all(run == runs[0] for run in runs)
        connection.close()

    def test_snapshot_collection_memo_survives_unrelated_writes(self, figure1):
        scratch = figure1.create_relation(
            "scratch", [("k", INTEGER)], key=["k"]
        )
        connection = connect(figure1)
        first = connection.execute(EXAMPLE_21_TEXT).fetchall()
        prepared = connection.service._admit(EXAMPLE_21_TEXT, None)
        assert len(prepared._snapshot_collections) == 1
        with connection.session():
            scratch.insert({"k": 1})
        cursor = connection.cursor().execute(EXAMPLE_21_TEXT)
        rows = cursor.fetchall()
        assert [r.values for r in rows] == [r.values for r in first]
        # The memoized collection served the repeat: no fresh employee scan.
        assert cursor.statistics["relations"].get("employees", {}).get(
            "scans", 0
        ) == 0
        connection.close()

    def test_snapshot_collection_memo_invalidates_on_relevant_writes(self, figure1):
        connection = connect(figure1)
        baseline = [
            r.values for r in connection.execute(PUBLISHING_TEACHERS_TEXT).fetchall()
        ]
        assert baseline
        with connection.session():
            figure1.relation("timetable").clear()
        assert connection.execute(PUBLISHING_TEACHERS_TEXT).fetchall() == []
        connection.close()


class _ProbeLock:
    """A registry-lock wrapper observing state at every critical-section exit."""

    def __init__(self, inner, on_exit):
        self._inner = inner
        self._on_exit = on_exit

    def __enter__(self):
        self._inner.acquire()
        return self

    def __exit__(self, *exc_info):
        self._on_exit()
        self._inner.release()

    def acquire(self, *args, **kwargs):
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        self._inner.release()


class TestRegistryLockDiscipline:
    """Review fixes: everything a concurrent ``pin()`` reads under the
    registry lock — element dicts, contents versions, the catalog itself —
    must only ever change inside that lock's critical sections."""

    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_version_bump_is_atomic_with_the_dict_write(self, paged):
        # A pin landing between a mutator's dict write and its version bump
        # would pair new contents with the old version token, poisoning the
        # snapshot collection memo.  Observe (contents, version) at every
        # lock release: one version must never identify two contents.
        database = _scratch_database(paged)
        relation = database.relation("r")
        registry = database._snapshots
        observed: list[tuple[frozenset, int]] = []

        def probe():
            frozen = frozenset(
                (key, tuple(record.values))
                for key, record in relation._elements.items()
            )
            observed.append((frozen, relation._version))

        registry.lock = _ProbeLock(registry.lock, probe)
        relation.insert({"k": 90, "v": 900})
        relation.insert_raw(relation._as_record({"k": 91, "v": 910}))
        relation.bulk_insert_raw(
            [relation._as_record({"k": 92, "v": 920})]
        )
        relation.delete_key(90)
        relation.assign([{"k": 1, "v": 10}, {"k": 2, "v": 20}])
        relation.clear()
        assert len(observed) >= 6
        contents_by_version: dict[int, frozenset] = {}
        for frozen, version in observed:
            if version in contents_by_version:
                assert contents_by_version[version] == frozen, (
                    "two different contents observed under version "
                    f"{version}: the bump escaped the locked section"
                )
            else:
                contents_by_version[version] = frozen

    def test_catalog_changes_happen_under_the_registry_lock(self):
        # pin() iterates database._relations under the registry lock and
        # outside the execution lock; DDL must take the same lock around
        # the catalog dict mutation or a pinning reader can crash with
        # "dictionary changed size during iteration".
        database = _scratch_database(paged=False)
        registry = database._snapshots
        held = []

        class _TrackedLock(_ProbeLock):
            def __enter__(self):
                result = super().__enter__()
                held.append(True)
                return result

            def __exit__(self, *exc_info):
                held.pop()
                return super().__exit__(*exc_info)

        registry.lock = _TrackedLock(registry.lock, lambda: None)

        class _GuardedCatalog(dict):
            def __setitem__(self, key, value):
                assert held, f"catalog insert of {key!r} outside the registry lock"
                super().__setitem__(key, value)

            def pop(self, key, *default):
                assert held, f"catalog pop of {key!r} outside the registry lock"
                return super().pop(key, *default)

        database._relations = _GuardedCatalog(database._relations)
        database.create_relation("fresh", [("k", INTEGER)], key=["k"])
        database.relation("fresh").insert({"k": 1})
        with database.pin_snapshot() as snapshot:
            assert snapshot.has_relation("fresh")
        database.drop_relation("fresh")

    def test_concurrent_ddl_never_breaks_a_pinning_reader(self):
        # Stress pendant of the deterministic test above: readers pin in a
        # tight loop while a writer grows the catalog.
        import threading

        database = _scratch_database(paged=False)
        failures: list[BaseException] = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                try:
                    with database.pin_snapshot() as snapshot:
                        for relation in snapshot.relations():
                            len(relation)
                except BaseException as exc:  # pragma: no cover - failure path
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for index in range(150):
                database.create_relation(
                    f"ddl_{index}", [("k", INTEGER)], key=["k"]
                )
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not failures

    def test_stale_transaction_completion_is_ignored(self):
        # transaction_finished carries the journal identity: a rollback
        # completion from a previous transaction must not clear a successor
        # transaction's overlay state.
        database = _scratch_database(paged=False)
        registry = database._snapshots
        stale, current = object(), object()
        registry.transaction_started(stale)
        registry.transaction_finished(stale)
        registry.transaction_started(current)
        registry.overlay["r"] = ({}, 0)
        registry.transaction_finished(stale)  # late duplicate: ignored
        assert registry.tx_active
        assert "r" in registry.overlay
        registry.transaction_finished(current)
        assert not registry.tx_active
        assert not registry.overlay


class TestSnapshotCursorInstall:
    def test_snapshot_flag_is_set_before_the_result_installs(self, figure1):
        # Connection._finalize_open_streams (a concurrent rollback) skips
        # cursors with _snapshot already True; the flag must therefore be
        # visible no later than the stream itself.
        connection = connect(figure1)
        cursor = connection.cursor()
        flags_at_install: list[bool] = []
        original = cursor._install

        def probing_install(result):
            flags_at_install.append(cursor._snapshot)
            return original(result)

        cursor._install = probing_install
        cursor.execute(PROFESSORS_TEXT)
        assert flags_at_install == [True]
        assert cursor.fetchall()
        connection.close()


class TestSharedStatisticsDiscipline:
    def test_snapshot_execution_does_not_reset_the_shared_tracker(self, figure1):
        # The snapshot path runs outside the execution lock; resetting the
        # shared tracker there would clobber an in-flight serialized
        # execution's counters.  Plant a counter no query ever touches and
        # check it survives a full snapshot execute + drain.
        connection = connect(figure1)
        figure1.statistics.recovered_transactions = 3
        cursor = connection.cursor().execute(PROFESSORS_TEXT)
        assert cursor.fetchall()
        assert figure1.statistics.recovered_transactions == 3
        connection.close()

    def test_merge_and_reset_serialize_on_the_statistics_lock(self):
        from repro.relational.statistics import AccessStatistics

        shared = AccessStatistics()
        private = AccessStatistics()
        private.record_scan("r")
        private.record_element_read("r", 4)
        locked_sections = []

        class _CountingLock:
            def __init__(self, inner):
                self._inner = inner

            def __enter__(self):
                self._inner.acquire()
                locked_sections.append(True)
                return self

            def __exit__(self, *exc_info):
                self._inner.release()

        shared._lock = _CountingLock(shared._lock)
        shared.merge(private)
        shared.reset()
        assert len(locked_sections) == 2
        assert shared.as_dict()["relations"] == {}
