"""The connection front door: lifecycle, option plumbing, deprecation shims."""

from __future__ import annotations

import pytest

from repro import (
    ConnectionClosedError,
    CursorError,
    QueryEngine,
    QueryService,
    ServiceOptions,
    StrategyOptions,
    connect,
    execute_naive,
)
from repro.api.connection import default_connection
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    PROFESSORS_TEXT,
    STATUS_PARAM_TEXT,
)


class TestConnectionLifecycle:
    def test_connect_executes_and_fetches(self, figure1):
        connection = connect(figure1)
        rows = connection.execute(PROFESSORS_TEXT).fetchall()
        expected = execute_naive(figure1, PROFESSORS_TEXT)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected)

    def test_context_manager_closes(self, figure1):
        with connect(figure1) as connection:
            assert not connection.closed
        assert connection.closed

    def test_double_close_is_a_noop(self, figure1):
        connection = connect(figure1)
        connection.close()
        connection.close()
        assert connection.closed

    def test_closed_connection_refuses_work(self, figure1):
        connection = connect(figure1)
        cursor = connection.cursor()
        connection.close()
        with pytest.raises(ConnectionClosedError):
            connection.cursor()
        with pytest.raises(ConnectionClosedError):
            connection.session()
        with pytest.raises(ConnectionClosedError):
            connection.prepare(PROFESSORS_TEXT)
        with pytest.raises(ConnectionClosedError):
            cursor.execute(PROFESSORS_TEXT)

    def test_close_rolls_back_active_transaction(self, figure1):
        connection = connect(figure1)
        employees = figure1.relation("employees")
        before = len(employees)
        session = connection.session()
        session.begin()
        employees.delete_key(employees.keys()[0])
        connection.close()
        assert len(employees) == before
        assert not figure1.in_transaction

    def test_connection_owns_service_and_cache(self, figure1):
        connection = connect(figure1, cache_capacity=3)
        connection.prepare(PROFESSORS_TEXT)
        connection.prepare(PROFESSORS_TEXT)
        info = connection.cache_info()
        assert info["size"] == 1
        assert info["capacity"] == 3
        assert info["hits"] >= 1


class TestOptionPlumbing:
    def test_connection_options_become_defaults(self, figure1):
        legacy = connect(figure1, options=StrategyOptions.none())
        assert legacy.options == StrategyOptions.none()
        result = legacy.execute(EXAMPLE_21_TEXT).fetchall()
        expected = execute_naive(figure1, EXAMPLE_21_TEXT)
        assert sorted(r.values for r in result) == sorted(r.values for r in expected)

    def test_session_option_overrides_share_the_plan_cache(self, figure1):
        connection = connect(figure1)
        session = connection.session(options=StrategyOptions.none())
        assert session.options == StrategyOptions.none()
        assert session._service is not connection.service
        assert session._service.cache is connection.service.cache
        assert session._service.engine is connection.service.engine
        rows = session.execute(EXAMPLE_21_TEXT).fetchall()
        expected = execute_naive(figure1, EXAMPLE_21_TEXT)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected)

    def test_session_service_option_overrides(self, figure1):
        connection = connect(figure1)
        session = connection.session(
            service_options=ServiceOptions(cursor_arraysize=5)
        )
        cursor = session.cursor()
        assert cursor.arraysize == 5
        cursor.execute(PROFESSORS_TEXT)
        batch = cursor.fetchmany()
        assert len(batch) <= 5

    def test_parameterized_execution_through_cursor(self, figure1):
        connection = connect(figure1)
        cursor = connection.execute(STATUS_PARAM_TEXT, {"status": "professor"})
        rows = cursor.fetchall()
        expected = execute_naive(figure1, PROFESSORS_TEXT)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected)


class TestExecutemany:
    def test_results_concatenate_in_request_order(self, figure1):
        connection = connect(figure1)
        cursor = connection.executemany(
            STATUS_PARAM_TEXT,
            [{"status": "professor"}, {"status": "student"}],
        )
        professors = connection.execute(
            STATUS_PARAM_TEXT, {"status": "professor"}
        ).fetchall()
        students = connection.execute(
            STATUS_PARAM_TEXT, {"status": "student"}
        ).fetchall()
        expected = [r.values for r in professors + students]
        assert [r.values for r in cursor.fetchall()] == expected

    def test_rowcount_known_immediately(self, figure1):
        connection = connect(figure1)
        cursor = connection.executemany(STATUS_PARAM_TEXT, [{"status": "professor"}])
        assert cursor.rowcount >= 0

    def test_empty_binding_sequence(self, figure1):
        connection = connect(figure1)
        cursor = connection.executemany(STATUS_PARAM_TEXT, [])
        assert cursor.fetchall() == []
        assert cursor.rowcount == 0


class TestDeprecationShims:
    def test_query_engine_execute_warns_and_works(self, figure1):
        engine = QueryEngine(figure1)
        with pytest.warns(DeprecationWarning, match="QueryEngine.execute is deprecated"):
            result = engine.execute(PROFESSORS_TEXT)
        assert result.relation == engine.run(PROFESSORS_TEXT).relation

    def test_query_service_construction_warns_and_works(self, figure1):
        with pytest.warns(DeprecationWarning, match="constructing QueryService"):
            service = QueryService(figure1)
        result = service.execute(PROFESSORS_TEXT)
        assert result.relation == execute_naive(figure1, PROFESSORS_TEXT)

    def test_deprecated_service_routes_through_default_connection(self, figure1):
        shared = default_connection(figure1)
        with pytest.warns(DeprecationWarning):
            service = QueryService(figure1)
        assert service.engine is shared.service.engine
        assert service._execution_lock is shared.service._execution_lock

    def test_default_connection_is_cached_per_database(self, figure1):
        first = default_connection(figure1)
        assert default_connection(figure1) is first
        first.close()
        replacement = default_connection(figure1)
        assert replacement is not first
        assert not replacement.closed


class TestCursorProtocol:
    def test_fetch_before_execute_raises(self, figure1):
        cursor = connect(figure1).cursor()
        with pytest.raises(CursorError):
            cursor.fetchone()

    def test_closed_cursor_refuses_fetches(self, figure1):
        # A closed *cursor* is a cursor-protocol error (CursorError); only a
        # closed *connection* raises ConnectionClosedError.
        connection = connect(figure1)
        cursor = connection.execute(PROFESSORS_TEXT)
        cursor.close()
        cursor.close()  # double close is a no-op
        with pytest.raises(CursorError):
            cursor.fetchone()

    def test_description_names_and_types(self, figure1):
        cursor = connect(figure1).execute(PROFESSORS_TEXT)
        assert [column.name for column in cursor.description] == ["enr", "ename"]
        assert cursor.description[1].type_code == "nametype"

    def test_re_execute_discards_previous_result(self, figure1):
        connection = connect(figure1)
        cursor = connection.execute(EXAMPLE_21_TEXT)
        cursor.fetchone()
        cursor.execute(PROFESSORS_TEXT)
        rows = cursor.fetchall()
        expected = execute_naive(figure1, PROFESSORS_TEXT)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected)
