"""Satellite: 8 pinned readers vs one mutating writer — never a torn read.

The writer rewrites a whole generation relation per transaction (every row
carries the generation number), committing some and rolling others back, and
records the contents committed at each ``data_version``.  Readers pin
snapshots (directly and through connection cursors) in a tight loop.  The
invariants under test:

* **Exactness** — a pin's contents are exactly what the writer committed at
  the pin's ``data_version``: never a mix of two generations, never an
  uncommitted or rolled-back row, by direct lookup in the writer's log.
* **Monotonicity** — consecutive pins on one thread never move backwards.

The asyncio variant drives the same workload through ``repro.aconnect()``
under ``asyncio.gather``: concurrent async cursors over pinned snapshots
while an async session commits, with the same torn-read check.
"""

from __future__ import annotations

import asyncio
import threading

import repro
from repro import connect
from repro.relational.database import Database
from repro.types.scalar import INTEGER

_READERS = 8
_PINS_PER_READER = 60
_ROWS = 5
_WRITER_GENERATIONS = 40

_QUERY = "[<g.k, g.gen> OF EACH g IN gens: (g.k >= 0)]"


def _make_database() -> Database:
    database = Database("stress", paged=False)
    database.create_relation(
        "gens",
        [("k", INTEGER), ("gen", INTEGER)],
        key=["k"],
        elements=[{"k": k, "gen": 0} for k in range(_ROWS)],
    )
    return database


def _generation_rows(generation: int) -> set[tuple]:
    return {(k, generation) for k in range(_ROWS)}


def test_eight_readers_observe_exactly_their_pinned_version():
    database = _make_database()
    connection = connect(database)
    gens = database.relation("gens")

    # data_version -> committed generation, maintained by the writer.  The
    # initial state is generation 0 at the current mutation epoch.
    committed: dict[int, int] = {database.statistics.mutation_epoch: 0}
    committed_lock = threading.Lock()
    writer_done = threading.Event()
    errors: list[BaseException] = []
    start = threading.Barrier(_READERS + 2)

    def writer() -> None:
        try:
            start.wait()
            session = connection.session()
            current = 0
            for generation in range(1, _WRITER_GENERATIONS + 1):
                session.begin()
                gens.assign([{"k": k, "gen": generation} for k in range(_ROWS)])
                if generation % 4 == 0:
                    # A rolled-back generation: no pin may ever surface it.
                    # The undo replay advances the mutation epoch, so the
                    # *restored* generation gets logged at the new version.
                    session.rollback()
                else:
                    session.commit()
                    current = generation
                with committed_lock:
                    committed[database.statistics.mutation_epoch] = current
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append(exc)
        finally:
            writer_done.set()

    def reader(slot: int) -> None:
        try:
            start.wait()
            last_version = -1
            cursor = connection.cursor()
            for round_number in range(_PINS_PER_READER):
                if round_number % 2 == 0:
                    # Direct pin: raw contents vs the writer's committed log.
                    snapshot = database.pin_snapshot()
                    try:
                        rows = {
                            tuple(record.values)
                            for record in snapshot.relation("gens").scan()
                        }
                        version = snapshot.data_version
                    finally:
                        snapshot.release()
                else:
                    # Cursor pin: the same invariant through the front door.
                    cursor.execute(_QUERY)
                    rows = {record.values for record in cursor.fetchall()}
                    version = None
                generations = {generation for _, generation in rows}
                assert len(rows) == _ROWS and len(generations) == 1, (
                    f"reader {slot} saw a torn state: {sorted(rows)}"
                )
                (generation,) = generations
                assert generation % 4 != 0 or generation == 0, (
                    f"reader {slot} saw rolled-back generation {generation}"
                )
                if version is not None:
                    # The writer records each commit *after* it completes, so
                    # wait for the log to catch up before the exact check.
                    while True:
                        with committed_lock:
                            expected = committed.get(version)
                        if expected is not None or writer_done.is_set():
                            break
                    with committed_lock:
                        expected = committed.get(version)
                    assert expected is not None, (
                        f"reader {slot} pinned unknown data_version {version}"
                    )
                    assert rows == _generation_rows(expected), (
                        f"reader {slot} at data_version {version}: "
                        f"saw generation {generation}, committed {expected}"
                    )
                    assert version >= last_version, "pins moved backwards"
                    last_version = version
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,), name=f"reader-{slot}")
        for slot in range(_READERS)
    ] + [threading.Thread(target=writer, name="writer")]
    for thread in threads:
        thread.start()
    start.wait()
    for thread in threads:
        thread.join(timeout=600)
        assert not thread.is_alive(), f"{thread.name} did not finish"
    assert not errors, errors
    connection.close()

    # The writer's final committed generation is what the live state holds.
    final = {tuple(record.values) for record in gens.scan()}
    last_committed = committed[max(committed)]
    assert final == _generation_rows(last_committed)


def test_async_readers_under_gather_never_see_torn_state():
    async def workload() -> None:
        database = _make_database()
        async with await repro.aconnect(database) as connection:
            gens = database.relation("gens")
            stop = asyncio.Event()

            async def reader(slot: int) -> list[int]:
                seen: list[int] = []
                cursor = connection.cursor()
                for _ in range(20):
                    await cursor.execute(_QUERY)
                    rows = {record.values for record in await cursor.fetchall()}
                    generations = {generation for _, generation in rows}
                    assert len(rows) == _ROWS and len(generations) == 1, (
                        f"async reader {slot} saw a torn state: {sorted(rows)}"
                    )
                    seen.extend(generations)
                return seen

            async def writer() -> int:
                generation = 0
                session = connection.session()
                while not stop.is_set():
                    generation += 1
                    async with session:
                        gens.assign(
                            [{"k": k, "gen": generation} for k in range(_ROWS)]
                        )
                    await asyncio.sleep(0)
                return generation

            async def stopper(readers) -> list[list[int]]:
                observed = await asyncio.gather(*readers)
                stop.set()
                return observed

            observed, final = await asyncio.gather(
                stopper([reader(slot) for slot in range(4)]), writer()
            )
            # Readers interleaved with live commits (not one frozen view) and
            # each reader observed monotonically advancing generations.
            assert final >= 1
            for seen in observed:
                assert seen == sorted(seen)

    asyncio.run(workload())
