"""Acceptance: cursor fetches stream — no full-result materialization up front.

The contract of the connection redesign: ``fetchone()`` on a fresh cursor
returns after *one* construction dereference, with the combination pipeline
suspended mid-flight.  ``CombinationResult.tuples`` (rows recorded as the
pipeline drains), ``rows_streamed`` (operator throughput) and
``peak_tuples`` (the ``LiveTupleTracker`` high-water mark of breaker state)
make the laziness measurable, and the fetched rows must be byte-identical to
the legacy materialising path.
"""

from __future__ import annotations

import pytest

from repro import QueryEngine, StrategyOptions, connect
from repro.errors import ConnectionClosedError
from repro.workloads.queries import OTHERS_PUBLISHED_1977_TEXT, PROFESSORS_TEXT
from repro.workloads.university import build_university_database


@pytest.fixture(scope="module")
def scale4():
    return build_university_database(scale=4)


class TestStreamingIsReal:
    """The ISSUE 5 acceptance criterion, on ``others_published_1977`` at scale 4."""

    def test_fetchone_does_not_materialize_the_full_result(self, scale4):
        engine = QueryEngine(scale4)
        legacy = engine.run(OTHERS_PUBLISHED_1977_TEXT)
        full_size = len(legacy.relation)
        full_streamed = legacy.statistics["rows_streamed"]
        assert full_size > 1

        connection = connect(scale4)
        cursor = connection.cursor()
        cursor.execute(OTHERS_PUBLISHED_1977_TEXT)
        first = cursor.fetchone()
        assert first is not None
        result = cursor.result
        # The pipeline has recorded only the prefix that was dereferenced so
        # far — not the full free-variable tuple set.
        assert len(result.combination.tuples) < full_size
        assert len(result.relation) < full_size
        # Operator throughput confirms it: closing flushes each operator's
        # row count, and far fewer rows crossed the pipeline than a complete
        # drain pushes through.  The cursor's private counters attribute the
        # rows to exactly this execution (the shared tracker accumulates
        # across executions and is no longer reset on the snapshot path).
        cursor.close()
        partial_streamed = cursor.statistics["rows_streamed"]
        assert 0 < partial_streamed < full_streamed

    def test_peak_is_breaker_state_only(self, scale4):
        """After a full cursor drain the LiveTupleTracker high-water mark
        matches the streaming executor's, far below the materialised peak."""
        materialized = QueryEngine(
            scale4, StrategyOptions().with_(streaming_execution=False)
        ).run(OTHERS_PUBLISHED_1977_TEXT)
        cursor = connect(scale4).execute(OTHERS_PUBLISHED_1977_TEXT)
        cursor.fetchall()
        streamed_peak = cursor.result.combination.peak_tuples
        assert streamed_peak < materialized.combination.peak_tuples
        assert streamed_peak <= len(materialized.relation) + 1

    def test_fetchmany_totals_byte_identical_to_legacy_rows(self, scale4):
        legacy = QueryEngine(scale4).run(OTHERS_PUBLISHED_1977_TEXT)
        cursor = connect(scale4).execute(OTHERS_PUBLISHED_1977_TEXT)
        fetched = []
        while True:
            batch = cursor.fetchmany(7)
            if not batch:
                break
            fetched.extend(batch)
        assert [r.values for r in fetched] == [r.values for r in legacy.rows]
        assert cursor.rowcount == len(legacy.rows)

    def test_iteration_matches_fetchall(self, scale4):
        connection = connect(scale4)
        via_iter = [r.values for r in connection.execute(OTHERS_PUBLISHED_1977_TEXT)]
        via_fetchall = [
            r.values
            for r in connection.execute(OTHERS_PUBLISHED_1977_TEXT).fetchall()
        ]
        assert via_iter == via_fetchall


class TestCursorLifecycle:
    def test_result_relation_fills_as_cursor_drains(self, figure1):
        # others_published_1977 streams (PROFESSORS_TEXT collapses to the
        # constant-matrix shortcut, which cannot defer construction).
        cursor = connect(figure1).execute(OTHERS_PUBLISHED_1977_TEXT)
        assert len(cursor.result.relation) == 0
        first = cursor.fetchone()
        assert first is not None
        assert len(cursor.result.relation) == 1
        cursor.fetchall()
        assert len(cursor.result.relation) == cursor.rowcount

    def test_close_mid_stream_releases_pinned_pages(self, scale4):
        connection = connect(scale4)
        cursor = connection.execute(OTHERS_PUBLISHED_1977_TEXT)
        assert cursor.fetchone() is not None
        cursor.close()
        for relation in scale4.relations():
            pool = getattr(relation, "buffer_pool", None)
            if pool is not None:
                assert pool.pinned_pages() == 0, relation.name

    def test_statistics_snapshot_finalises_on_exhaustion(self, figure1):
        cursor = connect(figure1).execute(PROFESSORS_TEXT)
        live = cursor.statistics
        assert isinstance(live, dict)
        cursor.fetchall()
        final = cursor.statistics
        assert final["relations"]["employees"]["scans"] >= 1
        assert final is cursor.result.statistics

    def test_statistics_survive_close_and_later_executions(self, figure1):
        """A closed cursor keeps ITS final snapshot, not the live counters
        of whatever ran afterwards on the connection."""
        connection = connect(figure1)
        cursor = connection.execute(OTHERS_PUBLISHED_1977_TEXT)
        assert cursor.fetchone() is not None
        cursor.close()
        frozen = cursor.statistics
        assert frozen["relations"]  # this cursor's own reads
        connection.execute(PROFESSORS_TEXT).fetchall()  # interleaved activity
        assert cursor.statistics is frozen

    def test_nonstreaming_options_still_fetch(self, figure1):
        connection = connect(figure1, options=StrategyOptions.none())
        cursor = connection.execute(PROFESSORS_TEXT)
        rows = cursor.fetchall()
        assert rows
        streaming_rows = connect(figure1).execute(PROFESSORS_TEXT).fetchall()
        assert sorted(r.values for r in rows) == sorted(
            r.values for r in streaming_rows
        )

    def test_fetchone_returns_none_after_exhaustion(self, figure1):
        cursor = connect(figure1).execute(PROFESSORS_TEXT)
        cursor.fetchall()
        assert cursor.fetchone() is None
        assert cursor.fetchmany(3) == []

    def test_fetches_fail_on_closed_connection(self, figure1):
        connection = connect(figure1)
        cursor = connection.execute(PROFESSORS_TEXT)
        connection.close()
        with pytest.raises(ConnectionClosedError):
            cursor.fetchone()


class TestQueryResultSequence:
    """Satellite: QueryResult.rows aliasing fix + sequence protocol."""

    def test_rows_is_a_defensive_copy(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.run(PROFESSORS_TEXT)
        size = len(result.relation)
        rows = result.rows
        rows.clear()
        rows.append("junk")
        assert len(result.relation) == size
        assert result.rows != rows
        assert all(hasattr(r, "values") for r in result.rows)

    def test_result_is_a_sequence(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.run(PROFESSORS_TEXT)
        assert list(result) == result.rows
        assert result[0] == result.rows[0]
        assert result[-1] == result.rows[-1]
        assert result[0:2] == result.rows[0:2]
        assert len(result) == len(result.rows)


class TestStreamAndCursorShutdown:
    """ISSUE 6 satellite: lifecycle edges of cursors and their row streams."""

    def test_closed_cursor_raises_cursor_error_on_every_fetch(self, figure1):
        from repro.errors import CursorError

        connection = connect(figure1)
        cursor = connection.execute(PROFESSORS_TEXT)
        cursor.fetchone()
        cursor.close()
        for fetch in (cursor.fetchone, cursor.fetchmany, cursor.fetchall):
            with pytest.raises(CursorError):
                fetch()
        with pytest.raises(CursorError):
            cursor.execute(PROFESSORS_TEXT)

    def test_double_rowstream_close_is_idempotent(self, figure1):
        from repro.engine.stream import RowStream

        stream = RowStream.from_relation(figure1.relation("employees"))
        iterator = iter(stream)
        next(iterator)  # pipeline in flight
        stream.close()
        stream.close()  # second close must be a no-op
        assert stream.consumed

    def test_closing_an_untouched_stream_is_a_noop(self, figure1):
        from repro.engine.stream import RowStream

        stream = RowStream.from_relation(figure1.relation("employees"))
        stream.close()
        stream.close()
        assert stream.consumed

    def test_connection_close_with_open_streaming_cursor(self, figure1):
        # A connection closed mid-stream must leave the cursor closable and
        # its statistics snapshot intact (the counters the partial drain
        # charged), not raise from the pipeline's finalizers.
        connection = connect(figure1)
        cursor = connection.execute(PROFESSORS_TEXT)
        cursor.fetchone()
        connection.close()
        cursor.close()
        cursor.close()
        snapshot = cursor.statistics
        assert isinstance(snapshot, dict)
        assert "rows_streamed" in snapshot


class TestFetchmanySizes:
    """Satellite bugfix: fetchmany(0) returned arraysize rows, not []."""

    def test_fetchmany_zero_returns_empty_without_advancing(self, figure1):
        cursor = connect(figure1).execute(PROFESSORS_TEXT)
        assert cursor.fetchmany(0) == []
        # The pipeline did not advance: the full result is still fetchable.
        baseline = connect(figure1).execute(PROFESSORS_TEXT).fetchall()
        assert [r.values for r in cursor.fetchall()] == [
            r.values for r in baseline
        ]

    def test_fetchmany_negative_raises_cursor_error(self, figure1):
        from repro.errors import CursorError

        cursor = connect(figure1).execute(PROFESSORS_TEXT)
        with pytest.raises(CursorError, match="non-negative"):
            cursor.fetchmany(-1)
        with pytest.raises(CursorError, match="-5"):
            cursor.fetchmany(-5)
        # A rejected size leaves the result set intact.
        assert cursor.fetchall()

    def test_fetchmany_none_uses_arraysize(self, figure1):
        everyone = "[<e.enr> OF EACH e IN employees: (e.enr >= 1)]"
        cursor = connect(figure1).execute(everyone)
        cursor.arraysize = 3
        assert len(cursor.fetchmany(None)) == 3
        cursor.arraysize = 2
        assert len(cursor.fetchmany()) == 2
