"""Sessions and the undo journal: begin/commit/rollback semantics and exactness.

The headline invariant (ISSUE 5 acceptance): after *any* journaled mutation
sequence, ``rollback()`` leaves relations, permanent indexes and cached-plan
validity identical to the pre-``begin`` snapshot — on both storage backends.
The hypothesis property drives random insert/delete/assign/clear
interleavings (extending the machinery of
``tests/relational/test_index_maintenance.py``) and checks the restored
database against a fresh rebuild, element order, index contents and zone
maps included.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StrategyOptions, TransactionError, connect, execute_naive
from repro.relational.database import Database
from repro.relational.index import HashIndex, build_index
from repro.types.scalar import INTEGER, Subrange
from repro.workloads.queries import EXAMPLE_21_TEXT, PROFESSORS_TEXT

_SMALL = Subrange(0, 9, "small")

#: One random mutation: (op, key, value) — keys collide often so deletes hit
#: and inserts no-op on duplicates (same distribution as the index
#: maintenance property suite).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(("insert", "delete", "assign", "clear")),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=25,
)


def _make_database(paged: bool) -> Database:
    database = Database("transactional", paged=paged)
    database.create_relation(
        "r",
        [("k", INTEGER), ("v", _SMALL)],
        key=["k"],
        page_capacity=4,
        elements=[{"k": k, "v": (k * 3) % 10} for k in range(6)],
    )
    database.create_index("r", "v")                 # HashIndex
    database.create_index("r", "k", operator="<=")  # SortedIndex
    return database


def _apply(relation, op: str, key: int, value: int, state: dict[int, int]) -> None:
    if op == "insert":
        if state.get(key, value) != value:
            return  # would be a key violation; not what this suite is about
        relation.insert({"k": key, "v": value})
        state[key] = value
    elif op == "delete":
        relation.delete_key(key)
        state.pop(key, None)
    elif op == "assign":
        state.pop(key, None)
        state[key] = value
        relation.assign([{"k": k, "v": v} for k, v in sorted(state.items())])
    else:  # clear
        relation.clear()
        state.clear()


def _assert_identical_to_fresh_rebuild(database: Database, paged: bool) -> None:
    """Relation contents, index answers and zone maps match a fresh build."""
    relation = database.relation("r")
    elements = [record.values for record in relation.elements()]
    fresh_db = Database("fresh", paged=paged)
    fresh_relation = fresh_db.create_relation(
        "r",
        [("k", INTEGER), ("v", _SMALL)],
        key=["k"],
        page_capacity=4,
        elements=relation.elements(),
    )
    assert [record.values for record in fresh_relation.elements()] == elements

    for relation_name, field_name in database.indexes():
        maintained = database.index_for(relation_name, field_name)
        operator = "=" if isinstance(maintained, HashIndex) else "<="
        rebuilt = build_index(relation, field_name, operator)
        assert len(maintained) == len(rebuilt), field_name
        for probe_value in range(-1, 11):
            got = sorted(ref.key for ref in maintained.probe_operator("=", probe_value))
            want = sorted(ref.key for ref in rebuilt.probe_operator("=", probe_value))
            assert got == want, (field_name, probe_value)

    if paged:
        assert relation.page_count == fresh_relation.page_count
        for page_number in range(relation.page_count):
            page = relation.heap_file.page(page_number)
            fresh_page = fresh_relation.heap_file.page(page_number)
            for field_name in ("k", "v"):
                assert page.zone(field_name) == fresh_page.zone(field_name), (
                    page_number,
                    field_name,
                )


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_rollback_restores_state_byte_identically(paged: bool, ops) -> None:
    """Random journaled interleavings, then rollback == never happened."""
    database = _make_database(paged)
    relation = database.relation("r")
    before_elements = [record.values for record in relation.elements()]
    before_schema_version = database.schema_version
    state = {record["k"]: record["v"] for record in relation.elements()}

    connection = connect(database)
    session = connection.session()
    with session:
        for op, key, value in ops:
            _apply(relation, op, key, value, state)
        assert {r["k"]: r["v"] for r in relation.elements()} == state
        session.rollback()

    assert [record.values for record in relation.elements()] == before_elements
    assert database.schema_version == before_schema_version
    assert not database.in_transaction
    _assert_identical_to_fresh_rebuild(database, paged)
    connection.close()


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
def test_commit_keeps_mutations(paged: bool) -> None:
    database = _make_database(paged)
    relation = database.relation("r")
    connection = connect(database)
    with connection.session() as session:
        relation.insert({"k": 100, "v": 1})
        assert len(session.journal) == 1
    assert relation.find((100,)) is not None
    _assert_identical_to_fresh_rebuild(database, paged)


class TestSessionProtocol:
    def test_begin_twice_raises(self, figure1):
        session = connect(figure1).session()
        session.begin()
        with pytest.raises(TransactionError):
            session.begin()
        session.rollback()

    def test_concurrent_transactions_are_rejected(self, figure1):
        connection = connect(figure1)
        first = connection.session()
        first.begin()
        second = connection.session()
        with pytest.raises(TransactionError):
            second.begin()
        first.commit()
        second.begin()  # the slot freed up
        second.rollback()

    def test_commit_without_begin_raises(self, figure1):
        session = connect(figure1).session()
        with pytest.raises(TransactionError):
            session.commit()
        with pytest.raises(TransactionError):
            session.rollback()

    def test_context_manager_commits_on_clean_exit(self, figure1):
        employees = figure1.relation("employees")
        before = len(employees)
        with connect(figure1).session() as session:
            employees.delete_key(employees.keys()[0])
            assert session.in_transaction
        assert len(employees) == before - 1

    def test_context_manager_rolls_back_on_exception(self, figure1):
        employees = figure1.relation("employees")
        before = [record.values for record in employees.elements()]
        with pytest.raises(RuntimeError):
            with connect(figure1).session():
                employees.clear()
                raise RuntimeError("abort")
        assert [record.values for record in employees.elements()] == before

    def test_session_close_rolls_back(self, figure1):
        employees = figure1.relation("employees")
        before = len(employees)
        session = connect(figure1).session()
        session.begin()
        employees.delete_key(employees.keys()[0])
        session.close()
        session.close()  # double close is a no-op
        assert len(employees) == before
        assert session.closed

    def test_session_is_reusable_across_transactions(self, figure1):
        employees = figure1.relation("employees")
        before = len(employees)
        session = connect(figure1).session()
        with session:
            employees.delete_key(employees.keys()[0])
            session.rollback()
        with session:
            pass
        assert len(employees) == before

    def test_journal_logs_operations(self, figure1):
        employees = figure1.relation("employees")
        session = connect(figure1).session()
        with session:
            employees.delete_key(employees.keys()[0])
            journal = session.journal
            assert journal.operations == [("employees", "delete")]
            assert journal.touched_relations() == ["employees"]
            session.rollback()


class TestTransactionalQueries:
    def test_reads_see_uncommitted_writes_then_rollback(self, figure1):
        connection = connect(figure1)
        employees = figure1.relation("employees")
        baseline = sorted(
            record.values
            for record in connection.execute(PROFESSORS_TEXT).fetchall()
        )
        with connection.session() as session:
            professor_keys = [
                figure1.relation("employees").schema.key_of(record.values)
                for record in employees.elements()
                if record.estatus.label == "professor"
            ]
            employees.delete_key(professor_keys[0])
            inside = sorted(
                record.values
                for record in session.execute(PROFESSORS_TEXT).fetchall()
            )
            assert len(inside) == len(baseline) - 1
            session.rollback()
        after = sorted(
            record.values
            for record in connection.execute(PROFESSORS_TEXT).fetchall()
        )
        assert after == baseline

    def test_rollback_keeps_cached_plans_valid(self, figure1):
        connection = connect(figure1)
        prepared = connection.prepare(EXAMPLE_21_TEXT)
        with connection.session() as session:
            figure1.relation("papers").clear()  # flips the emptiness signature
            assert prepared.is_stale()
            session.rollback()
        assert not prepared.is_stale()
        # The plan cache still serves the pre-transaction compilation.
        assert connection.prepare(EXAMPLE_21_TEXT) is prepared
        result = prepared.execute()
        assert result.relation == execute_naive(figure1, EXAMPLE_21_TEXT)

    def test_per_session_options_and_transaction_compose(self, figure1):
        connection = connect(figure1)
        session = connection.session(options=StrategyOptions.none())
        with session:
            rows = session.execute(EXAMPLE_21_TEXT).fetchall()
            session.rollback()
        expected = execute_naive(figure1, EXAMPLE_21_TEXT)
        assert sorted(r.values for r in rows) == sorted(r.values for r in expected)

    def test_ddl_is_not_transactional(self, figure1):
        """The documented carve-out: catalog changes survive a rollback."""
        connection = connect(figure1)
        with connection.session() as session:
            figure1.create_index("papers", "pyear")
            session.rollback()
        assert figure1.index_for("papers", "pyear") is not None

    def test_drop_relation_mid_transaction_does_not_strand_rollback(self, figure1):
        """A relation mutated then dropped inside the transaction must not
        leave its journal attached — rollback still restores the others."""
        connection = connect(figure1)
        papers = figure1.relation("papers")
        employees = figure1.relation("employees")
        papers_before = [record.values for record in papers.elements()]
        with connection.session() as session:
            employees.delete_key(employees.keys()[0])
            papers.clear()
            figure1.drop_relation("papers")
            session.rollback()
        # The drop is DDL and survives; the surviving relation is restored.
        assert not figure1.has_relation("papers")
        assert len(employees) == 8
        assert not figure1.in_transaction
        # The orphaned relation object got its before-image back (harmless
        # but exact), and is no longer journaled.
        assert [record.values for record in papers.elements()] == papers_before
        assert papers._journal is None


class TestBusyTimeout:
    """ISSUE 6 satellite: ``ServiceOptions.busy_timeout`` lets a ``begin``
    wait for the database's one transaction slot instead of failing fast."""

    def test_zero_timeout_fails_immediately(self, figure1):
        connection = connect(figure1)
        holder = connection.session()
        holder.begin()
        try:
            with pytest.raises(TransactionError) as excinfo:
                connection.session().begin()
            assert "waited" not in str(excinfo.value)
        finally:
            holder.rollback()

    def test_expired_timeout_reports_the_wait(self, figure1):
        from repro import ServiceOptions

        connection = connect(figure1)
        holder = connection.session()
        holder.begin()
        try:
            waiter = connection.session(
                service_options=ServiceOptions(busy_timeout=0.05)
            )
            with pytest.raises(TransactionError, match="waited 0.05"):
                waiter.begin()
        finally:
            holder.rollback()

    def test_begin_waits_out_a_concurrent_transaction(self, figure1):
        import threading

        from repro import ServiceOptions

        connection = connect(figure1)
        holder = connection.session()
        holder.begin()
        started = threading.Event()
        outcome: dict = {}

        def contender():
            session = connection.session(
                service_options=ServiceOptions(busy_timeout=5.0)
            )
            started.set()
            try:
                session.begin()
                outcome["acquired"] = True
                session.rollback()
            except TransactionError as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        thread = threading.Thread(target=contender)
        thread.start()
        started.wait()
        # The contender is now (or is about to be) parked on the condition;
        # committing frees the slot and must wake it well before 5 s.
        holder.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome.get("acquired") is True
        assert not figure1.in_transaction


class _ExplodingIndex:
    """An attached observer whose every maintenance hook fails."""

    def add(self, record):
        raise RuntimeError("observer exploded in add")

    def remove(self, record):
        raise RuntimeError("observer exploded in remove")

    def clear(self):
        raise RuntimeError("observer exploded in clear")


class TestRollbackRobustness:
    """ISSUE 6 satellite: one broken observer must not turn rollback into
    wholesale data loss — the remaining before-images are still restored."""

    def _database(self):
        database = Database("fragile")
        database.create_relation("a", [("k", INTEGER)], key=["k"])
        database.create_relation("b", [("k", INTEGER)], key=["k"])
        database.relation("a").insert({"k": 1})
        database.relation("b").insert({"k": 1})
        return database

    def test_failing_restore_does_not_stop_the_rollback(self):
        database = self._database()
        a, b = database.relation("a"), database.relation("b")
        connection = connect(database)
        session = connection.session()
        session.begin()
        a.insert({"k": 2})
        b.insert({"k": 2})  # b touched last -> restored first
        b.attach_index(_ExplodingIndex())
        with pytest.raises(TransactionError) as excinfo:
            session.rollback()
        # The failure on b was collected, a's before-image was still restored,
        # and the original observer exception rides along as the cause.
        assert "b" in str(excinfo.value)
        assert "remaining before-images were restored" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert sorted(r.k for r in a) == [1]
        assert not database.in_transaction
        assert not session.in_transaction

    def test_clean_observers_keep_rollback_exact(self):
        database = self._database()
        index = build_index(database.relation("a"), "k")
        database.relation("a").attach_index(index)
        connection = connect(database)
        session = connection.session()
        session.begin()
        database.relation("a").insert({"k": 5})
        session.rollback()
        assert sorted(r.k for r in database.relation("a")) == [1]
        assert len(index.probe(5)) == 0


class TestRollbackFinalizesOpenStreams:
    """Satellite bugfix: rollback with an open streaming cursor on the same
    connection used to leave the stream dereferencing before-image state
    mid-drain.  The pinned behavior: ``rollback()`` finalizes every open
    live-path stream (releasing breaker state and pinned pages) and later
    fetches raise ``CursorError`` naming the rollback; snapshot cursors are
    untouched (their pinned view never depended on the rolled-back state)."""

    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_rollback_invalidates_open_live_streams(self, paged):
        from repro import CursorError, ServiceOptions, connect
        from repro.workloads.queries import OTHERS_PUBLISHED_1977_TEXT
        from repro.workloads.university import build_university_database

        database = build_university_database(scale=2, paged=paged)
        database.create_relation("scratch", [("k", INTEGER)], key=["k"])
        connection = connect(
            database, service_options=ServiceOptions(snapshot_reads=False)
        )
        cursor = connection.cursor().execute(OTHERS_PUBLISHED_1977_TEXT)
        assert cursor.fetchone() is not None  # stream is open mid-drain

        session = connection.session()
        session.begin()
        database.relation("scratch").insert({"k": 1})
        session.rollback()

        with pytest.raises(CursorError, match="rolled back"):
            cursor.fetchone()
        with pytest.raises(CursorError, match="rolled back"):
            cursor.fetchall()
        # The finalized stream released its pinned pages.
        for relation in database.relations():
            pool = getattr(relation, "buffer_pool", None)
            if pool is not None:
                assert pool.pinned_pages() == 0, relation.name
        # The cursor itself is reusable: the next execute clears the marker.
        assert cursor.execute(OTHERS_PUBLISHED_1977_TEXT).fetchall()
        connection.close()

    @pytest.mark.parametrize("paged", [False, True], ids=["memory", "paged"])
    def test_rollback_invalidates_the_sessions_own_open_cursor(self, paged):
        from repro import CursorError, connect
        from repro.workloads.queries import OTHERS_PUBLISHED_1977_TEXT
        from repro.workloads.university import build_university_database

        database = build_university_database(scale=2, paged=paged)
        database.create_relation("scratch", [("k", INTEGER)], key=["k"])
        connection = connect(database)
        session = connection.session()
        session.begin()
        database.relation("scratch").insert({"k": 1})
        cursor = session.cursor().execute(OTHERS_PUBLISHED_1977_TEXT)
        assert cursor.fetchone() is not None
        session.rollback()
        with pytest.raises(CursorError, match="rolled back"):
            cursor.fetchone()
        connection.close()

    def test_rollback_leaves_snapshot_and_finished_cursors_alone(self, figure1):
        from repro import connect
        from repro.workloads.queries import OTHERS_PUBLISHED_1977_TEXT

        figure1.create_relation("scratch", [("k", INTEGER)], key=["k"])
        connection = connect(figure1)  # snapshot reads on
        open_snapshot = connection.cursor().execute(OTHERS_PUBLISHED_1977_TEXT)
        first = open_snapshot.fetchone()
        assert first is not None
        drained = connection.cursor().execute(OTHERS_PUBLISHED_1977_TEXT)
        expected = [first.values] + [
            record.values for record in drained.fetchall()
        ][1:]

        session = connection.session()
        session.begin()
        figure1.relation("scratch").insert({"k": 1})
        session.rollback()

        # The snapshot cursor drains to the exact pre-rollback rows, and the
        # already-exhausted cursor keeps answering rowcount/statistics.
        rest = [record.values for record in open_snapshot.fetchall()]
        assert [first.values, *rest] == expected
        assert drained.rowcount == len(expected)
        connection.close()


class _StallingIndex:
    """An observer that parks the rollback replay until told to continue."""

    def __init__(self):
        import threading

        self.entered = threading.Event()
        self.release = threading.Event()

    def add(self, record):
        self.entered.set()
        assert self.release.wait(timeout=10.0)

    def remove(self, record):
        pass

    def clear(self):
        pass


class TestRollbackHoldsTheTransactionSlot:
    """Review fix: the transaction slot must stay held until the rollback
    replay completes.  Freeing it at ``end_transaction`` let a second
    session begin mid-replay — its fresh journal made the replay fail on
    the 'still journaled' guard, and the stale completion callback cleared
    the NEW transaction's snapshot-overlay state."""

    def _database(self):
        database = Database("slot")
        database.create_relation("a", [("k", INTEGER)], key=["k"])
        database.relation("a").insert({"k": 1})
        return database

    def test_begin_is_refused_and_waits_while_the_replay_runs(self):
        import threading

        from repro import ServiceOptions

        database = self._database()
        relation = database.relation("a")
        connection = connect(database)
        stall = _StallingIndex()

        session = connection.session()
        session.begin()
        relation.insert({"k": 2})
        relation.attach_index(stall)  # only the replay's re-inserts stall

        rolled = threading.Event()

        def roll():
            session.rollback()
            rolled.set()

        replayer = threading.Thread(target=roll)
        replayer.start()
        try:
            assert stall.entered.wait(timeout=10.0)
            # Mid-replay: the slot is still held, so an immediate begin is
            # refused and the database still reports an open transaction.
            assert database.in_transaction
            with pytest.raises(TransactionError):
                connection.session().begin()

            # A begin with a busy timeout parks on the condition and must
            # only be admitted once the replay has finished.
            admitted: dict = {}

            def contend():
                waiter = connection.session(
                    service_options=ServiceOptions(busy_timeout=10.0)
                )
                waiter.begin()
                admitted["after_replay"] = rolled.is_set()
                waiter.rollback()

            contender = threading.Thread(target=contend)
            contender.start()
            contender.join(timeout=0.3)
            assert contender.is_alive(), "begin was admitted mid-replay"
        finally:
            stall.release.set()
        replayer.join(timeout=10.0)
        contender.join(timeout=10.0)
        assert not replayer.is_alive() and not contender.is_alive()
        assert admitted.get("after_replay") is True
        # The rollback was exact despite the contention.
        relation.detach_index(stall)
        assert sorted(record.k for record in relation) == [1]
        assert not database.in_transaction
        connection.close()
