"""The QueryService facade: caching, invalidation, batching, thread safety."""

import threading

import pytest

from repro import QueryEngine, StrategyOptions, build_university_database, connect, execute_naive
from repro.config import ServiceOptions
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    PROFESSORS_TEXT,
    STATUS_PARAM_TEXT,
    TEACHES_AT_LEVEL_PARAM_TEXT,
    parameterized_queries,
)


class TestPlanCaching:
    def test_same_text_hits_the_cache(self, figure1):
        service = connect(figure1).service
        first = service.prepare(PROFESSORS_TEXT)
        second = service.prepare(PROFESSORS_TEXT)
        assert second is first
        assert service.cache_info()["hits"] == 1

    def test_normalization_ignores_whitespace_comments_and_keyword_case(self, figure1):
        service = connect(figure1).service
        first = service.prepare(PROFESSORS_TEXT)
        variant = (
            "  [<e.enr, e.ename> OF each e IN employees:  {paper query}\n"
            "      (e.estatus = professor)]  (* trailing *)"
        )
        assert service.prepare(variant) is first

    def test_different_options_get_different_plans(self, figure1):
        service = connect(figure1).service
        default = service.prepare(EXAMPLE_21_TEXT)
        legacy = service.prepare(EXAMPLE_21_TEXT, options=StrategyOptions.none())
        assert legacy is not default
        assert len(service.cache) == 2

    def test_catalog_change_invalidates_cached_plans(self, figure1):
        service = connect(figure1).service
        before = service.prepare(PROFESSORS_TEXT)
        figure1.create_index("employees", "enr")
        after = service.prepare(PROFESSORS_TEXT)
        assert after is not before

    def test_dropped_then_recreated_index_invalidates_cached_plans(self, figure1):
        """Regression: every index drop AND re-create is its own catalog
        change, so a plan cached against the intermediate (index-less)
        catalog cannot be served once the index is back — the re-created
        index may change the chosen access path."""
        figure1.create_index("employees", "enr")
        service = connect(figure1).service
        with_index = service.prepare(PROFESSORS_TEXT)
        figure1.drop_index("employees", "enr")
        assert with_index.is_stale()
        without_index = service.prepare(PROFESSORS_TEXT)
        assert without_index is not with_index
        figure1.create_index("employees", "enr")
        assert without_index.is_stale()
        recreated = service.prepare(PROFESSORS_TEXT)
        assert recreated is not without_index and recreated is not with_index
        assert not recreated.is_stale()
        recreated.execute()  # and the fresh plan executes

    def test_emptiness_transition_invalidates_cached_plans(self):
        """Lemma 1 is the only data dependency of compilation: plans are keyed
        on which relations are empty."""
        database = build_university_database(scale=1)
        service = connect(database).service
        before = service.prepare(EXAMPLE_21_TEXT)
        papers = database.relation("papers")
        saved = list(papers.elements())
        papers.assign([])
        adapted = service.prepare(EXAMPLE_21_TEXT)
        assert adapted is not before
        assert "empty-relation adaptation" in adapted.trace.names()
        assert service.execute(EXAMPLE_21_TEXT).relation == execute_naive(
            database, EXAMPLE_21_TEXT
        )
        papers.assign(saved)
        assert service.execute(EXAMPLE_21_TEXT).relation == execute_naive(
            database, EXAMPLE_21_TEXT
        )

    def test_unrelated_emptiness_flip_keeps_cached_plans(self, figure1):
        """The cache key ignores emptiness; a hit is validated against the
        plan's own referenced relations, so flipping an unrelated relation
        neither orphans nor duplicates entries."""
        from repro.types.scalar import INTEGER

        figure1.create_relation("audit_log", [("anr", INTEGER)], key=["anr"])
        service = connect(figure1).service
        first = service.prepare(PROFESSORS_TEXT)
        figure1.relation("audit_log").insert({"anr": 1})  # empty -> non-empty
        assert service.prepare(PROFESSORS_TEXT) is first
        assert len(service.cache) == 1

    def test_lru_eviction_respects_capacity(self, figure1):
        service = connect(figure1, cache_capacity=1).service
        service.prepare(PROFESSORS_TEXT)
        service.prepare(EXAMPLE_21_TEXT)
        assert len(service.cache) == 1

    def test_selection_objects_are_cacheable_keys(self, figure1):
        from repro.workloads.queries import example_21

        service = connect(figure1).service
        first = service.prepare(example_21())
        second = service.prepare(example_21())
        assert second is first


class TestExecuteBatch:
    def test_batch_results_equal_individual_execution(self, figure1):
        service = connect(figure1).service
        requests = [
            (STATUS_PARAM_TEXT, {"status": "professor"}),
            (STATUS_PARAM_TEXT, {"status": "student"}),
            (TEACHES_AT_LEVEL_PARAM_TEXT, {"level": "sophomore"}),
            EXAMPLE_21_TEXT,
            PROFESSORS_TEXT,
        ]
        batch = service.execute_batch(requests)
        assert len(batch) == len(requests)
        for request, result in zip(requests, batch):
            query, parameters = request if isinstance(request, tuple) else (request, None)
            individual = service.execute(query, parameters)
            assert result.relation == individual.relation, query

    def test_batch_shares_relation_scans(self, figure1):
        """Queries over the same unrestricted ranges share one scan.

        Strategy 4 is switched off so the quantifiers reach the collection
        phase as indirect joins (a Strategy 4 value list always scans its
        inner relation itself); with plain Strategy 1, the merged collection
        phase serves all three queries from one scan per relation.
        """
        options = StrategyOptions.only(parallel_collection=True)
        service = connect(figure1, options=options).service
        queries = [
            "[<e.ename> OF EACH e IN employees: SOME t IN timetable ((e.enr = t.tenr))]",
            "[<e.ename> OF EACH e IN employees: SOME t IN timetable ((e.enr = t.tcnr))]",
            "[<e.enr> OF EACH e IN employees: SOME t IN timetable ((e.enr < t.tenr))]",
        ]
        batch = service.execute_batch(queries)
        for query, result in zip(queries, batch):
            assert result.relation == execute_naive(figure1, query), query
        scans = {
            name: counters["scans"]
            for name, counters in batch[-1].statistics["relations"].items()
        }
        assert scans["employees"] == 1
        assert scans["timetable"] == 1

    def test_batch_groups_only_compatible_ranges(self, figure1):
        """Conflicting variable ranges must not be merged into one group."""
        service = connect(figure1).service
        queries = [
            "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]",
            "[<e.ctitle> OF EACH e IN courses: (e.clevel = senior)]",  # same var, other relation
        ]
        batch = service.execute_batch(queries)
        for query, result in zip(queries, batch):
            assert result.relation == execute_naive(figure1, query), query

    def test_batch_handles_parameterized_workload(self, university_scale2):
        service = connect(university_scale2).service
        requests = [
            (text, values)
            for _, (text, bindings) in parameterized_queries().items()
            for values in bindings
        ]
        batch = service.execute_batch(requests)
        for (text, values), result in zip(requests, batch):
            assert result.relation == service.execute(text, values).relation, (text, values)

    def test_batching_can_be_disabled(self, figure1):
        service = connect(
            figure1, service_options=ServiceOptions(batching=False)
        ).service
        batch = service.execute_batch([PROFESSORS_TEXT, EXAMPLE_21_TEXT])
        assert [len(r) for r in batch] == [
            len(service.execute(PROFESSORS_TEXT)),
            len(service.execute(EXAMPLE_21_TEXT)),
        ]


class TestThreadSafety:
    def test_concurrent_prepare_and_execute(self):
        database = build_university_database(scale=1)
        service = connect(database).service
        requests = [
            (text, values)
            for _, (text, bindings) in parameterized_queries().items()
            for values in bindings
        ]
        expected = {
            index: service.execute(text, values).relation
            for index, (text, values) in enumerate(requests)
        }
        failures: list = []

        def worker(worker_index: int) -> None:
            try:
                for round_index in range(4):
                    index = (worker_index + round_index) % len(requests)
                    text, values = requests[index]
                    result = service.execute(text, values)
                    if result.relation != expected[index]:
                        failures.append((worker_index, index))
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append((worker_index, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
