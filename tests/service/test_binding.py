"""Parameter collection, validation and substitution."""

import pytest

from repro.calculus.ast import Comparison, Const, Param
from repro.calculus.typecheck import resolve_selection
from repro.config import StrategyOptions
from repro.engine.naive import evaluate_selection_naive
from repro.errors import BindingError, TypeCheckError
from repro.lang.parser import parse_selection
from repro.service import bind_plan, bind_selection, check_bindings, collect_parameters
from repro.transform.pipeline import prepare_query
from repro.types.scalar import EnumValue

PARAM_TEXT = """
[<e.ename> OF EACH e IN employees:
    (e.estatus = $status)
    AND ALL p IN papers ((p.pyear <> $year) OR (e.enr <> p.penr))]
"""


def resolved(figure1):
    return resolve_selection(parse_selection(PARAM_TEXT), figure1)


class TestCollectParameters:
    def test_finds_every_parameter(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        assert sorted(parameters) == ["status", "year"]

    def test_resolution_attaches_scalar_types(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        assert parameters["status"].type.name == "statustype"
        assert parameters["year"].type.name == "yeartype"

    def test_unresolved_selection_has_untyped_parameters(self):
        parameters = collect_parameters(parse_selection(PARAM_TEXT))
        assert parameters["status"].type is None

    def test_plan_collection_covers_prefix_and_derived_predicates(self, figure1):
        plan = prepare_query(resolved(figure1), figure1, StrategyOptions.all_strategies())
        assert sorted(collect_parameters(plan)) == ["status", "year"]

    def test_plan_collection_without_transform_strategies(self, figure1):
        plan = prepare_query(resolved(figure1), figure1, StrategyOptions.none())
        assert sorted(collect_parameters(plan)) == ["status", "year"]


class TestCheckBindings:
    def test_coerces_through_the_resolved_type(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        coerced = check_bindings(parameters, {"status": "professor", "year": 1977})
        assert isinstance(coerced["status"], EnumValue)
        assert coerced["year"] == 1977

    def test_missing_parameter(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        with pytest.raises(BindingError, match=r"\$year"):
            check_bindings(parameters, {"status": "professor"})

    def test_unknown_parameter(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        with pytest.raises(BindingError, match=r"\$typo"):
            check_bindings(
                parameters, {"status": "professor", "year": 1977, "typo": 1}
            )

    def test_value_outside_the_scalar_type(self, figure1):
        parameters = collect_parameters(resolved(figure1))
        with pytest.raises(BindingError, match="not a value"):
            check_bindings(parameters, {"status": "janitor", "year": 1977})


class TestSubstitution:
    def test_bound_selection_evaluates_like_a_literal_query(self, figure1):
        selection = resolved(figure1)
        parameters = collect_parameters(selection)
        values = check_bindings(parameters, {"status": "professor", "year": 1977})
        bound = bind_selection(selection, values)
        literal = resolve_selection(
            parse_selection(PARAM_TEXT.replace("$status", "professor").replace("$year", "1977")),
            figure1,
        )
        assert evaluate_selection_naive(bound, figure1) == evaluate_selection_naive(
            literal, figure1
        )

    def test_bound_selection_contains_no_parameters(self, figure1):
        selection = resolved(figure1)
        values = check_bindings(
            collect_parameters(selection), {"status": "professor", "year": 1977}
        )
        assert collect_parameters(bind_selection(selection, values)) == {}

    def test_bound_plan_contains_no_parameters(self, figure1):
        selection = resolved(figure1)
        plan = prepare_query(selection, figure1, StrategyOptions.all_strategies())
        values = check_bindings(
            collect_parameters(plan), {"status": "student", "year": 1975}
        )
        assert collect_parameters(bind_plan(plan, values)) == {}

    def test_bound_plan_reuses_trace_and_options(self, figure1):
        plan = prepare_query(resolved(figure1), figure1, StrategyOptions.all_strategies())
        values = check_bindings(
            collect_parameters(plan), {"status": "professor", "year": 1977}
        )
        bound = bind_plan(plan, values)
        assert bound.trace is plan.trace
        assert bound.options is plan.options

    def test_unbound_occurrence_raises(self, figure1):
        selection = resolved(figure1)
        with pytest.raises(BindingError):
            bind_selection(selection, {"status": "professor"})


class TestParamTypechecking:
    def test_param_against_param_is_rejected(self, figure1):
        text = "[<e.ename> OF EACH e IN employees: ($a = $b)]"
        with pytest.raises(TypeCheckError):
            resolve_selection(parse_selection(text), figure1)

    def test_param_against_constant_is_rejected(self, figure1):
        text = "[<e.ename> OF EACH e IN employees: ($a = 3)]"
        with pytest.raises(TypeCheckError):
            resolve_selection(parse_selection(text), figure1)

    def test_params_compare_equal_regardless_of_type_annotation(self):
        comparison = Comparison(Param("x"), "=", Const(1))
        assert comparison.left == Param("x", None)

    def test_conflicting_types_for_one_parameter_are_rejected(self, figure1):
        """One bound value cannot satisfy incompatible component types — the
        resolver must fail like the literal-constant equivalent would."""
        text = "[<e.ename> OF EACH e IN employees: (e.enr = $x) AND (e.ename = $x)]"
        with pytest.raises(TypeCheckError, match=r"\$x"):
            resolve_selection(parse_selection(text), figure1)

    def test_compatible_repeated_parameter_is_accepted(self, figure1):
        text = "[<e.ename> OF EACH e IN employees: (e.enr = $x) OR (e.enr > $x)]"
        parameters = collect_parameters(resolve_selection(parse_selection(text), figure1))
        assert sorted(parameters) == ["x"]
