"""The LRU plan cache and its counters."""

import pytest

from repro.errors import PlanError
from repro.relational.statistics import AccessStatistics
from repro.service.cache import PlanCache


class TestPlanCache:
    def test_store_and_lookup(self):
        cache = PlanCache(4)
        cache.store("a", 1)
        assert cache.lookup("a") == 1
        assert cache.lookup("b") is None

    def test_lru_eviction_order(self):
        cache = PlanCache(2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")          # refresh "a": "b" is now least recent
        cache.store("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_capacity_must_be_non_negative(self):
        with pytest.raises(PlanError):
            PlanCache(-1)

    def test_zero_capacity_disables_caching(self):
        cache = PlanCache(0)
        cache.store("a", 1)
        assert cache.lookup("a") is None
        assert len(cache) == 0

    def test_zero_capacity_service_still_works(self):
        from repro import build_university_database, connect, execute_naive
        from repro.config import ServiceOptions

        database = build_university_database(scale=1)
        service = connect(
            database, service_options=ServiceOptions(plan_cache_capacity=0)
        ).service
        text = "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]"
        first = service.prepare(text)
        second = service.prepare(text)
        assert second is not first  # recompiled every time
        assert service.execute(text).relation == execute_naive(database, text)

    def test_invalidate_clears_entries_but_not_counters(self):
        cache = PlanCache(4)
        cache.store("a", 1)
        cache.lookup("a")
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_and_miss_counters(self):
        cache = PlanCache(4)
        cache.lookup("a")
        cache.store("a", 1)
        cache.lookup("a")
        cache.lookup("a")
        assert cache.hits == 2
        assert cache.misses == 1
        info = cache.info()
        assert info["size"] == 1
        assert info["hits"] == 2
        assert info["misses"] == 1

    def test_counters_mirror_into_access_statistics(self):
        statistics = AccessStatistics()
        cache = PlanCache(4, statistics=statistics)
        cache.lookup("a")
        cache.store("a", 1)
        cache.lookup("a")
        assert statistics.plan_cache_hits == 1
        assert statistics.plan_cache_misses == 1
        snapshot = statistics.as_dict()
        assert snapshot["plan_cache_hits"] == 1
        assert snapshot["plan_cache_misses"] == 1

    def test_statistics_reset_zeroes_the_windowed_counters(self):
        statistics = AccessStatistics()
        cache = PlanCache(4, statistics=statistics)
        cache.lookup("a")
        statistics.reset()
        assert statistics.plan_cache_misses == 0
        assert cache.misses == 1  # the cache's own counters are monotonic
