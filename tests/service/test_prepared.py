"""The service-level PreparedQuery: lifecycle, late binding, memo safety."""

import pytest

from repro import StrategyOptions, build_university_database, connect, execute_naive
from repro.calculus.typecheck import resolve_selection
from repro.errors import BindingError
from repro.lang.parser import parse_selection
from repro.service import bind_selection, check_bindings, collect_parameters
from repro.workloads.queries import (
    NO_PAPERS_IN_YEAR_PARAM_TEXT,
    RUNNING_QUERY_PARAM_TEXT,
    STATUS_PARAM_TEXT,
    parameterized_queries,
)


def naive_reference(database, text, values):
    """Ground truth: bind into a freshly parsed query, evaluate naively."""
    selection = resolve_selection(parse_selection(text), database)
    coerced = check_bindings(collect_parameters(selection), values)
    return execute_naive(database, bind_selection(selection, coerced))


class TestLifecycle:
    def test_prepare_records_the_transformation_trace(self, figure1):
        service = connect(figure1).service
        prepared = service.prepare(RUNNING_QUERY_PARAM_TEXT)
        assert prepared.trace.names()  # resolve happened before prepare_query
        assert prepared.is_parameterized()
        assert prepared.parameter_names == ("level", "status", "year")

    def test_every_workload_binding_matches_fresh_naive_evaluation(self, figure1):
        service = connect(figure1).service
        for name, (text, bindings) in parameterized_queries().items():
            prepared = service.prepare(text)
            for values in bindings:
                result = prepared.execute(values)
                assert result.relation == naive_reference(figure1, text, values), (
                    name,
                    values,
                )

    def test_repeated_execution_uses_the_collection_memo(self, figure1):
        service = connect(figure1).service
        prepared = service.prepare(NO_PAPERS_IN_YEAR_PARAM_TEXT)
        first = prepared.execute({"year": 1977})
        second = prepared.execute({"year": 1977})
        assert second.relation == first.relation
        # The second run reused the collected structures: no relation scans.
        assert sum(
            counters["scans"] for counters in second.statistics["relations"].values()
        ) < sum(counters["scans"] for counters in first.statistics["relations"].values())

    def test_distinct_bindings_never_share_collection_structures(self, figure1):
        """The binding-leak regression: each binding set gets its own result."""
        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        professors = prepared.execute({"status": "professor"}).relation
        students = prepared.execute({"status": "student"}).relation
        professors_again = prepared.execute({"status": "professor"}).relation
        assert professors == naive_reference(figure1, STATUS_PARAM_TEXT, {"status": "professor"})
        assert students == naive_reference(figure1, STATUS_PARAM_TEXT, {"status": "student"})
        assert professors_again == professors
        assert professors != students

    def test_data_mutation_invalidates_the_collection_memo(self, figure1):
        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        before = prepared.execute({"status": "professor"}).relation
        figure1.relation("employees").insert(
            {"enr": 9001, "ename": "NewProf", "estatus": "professor"}
        )
        after = prepared.execute({"status": "professor"}).relation
        assert len(after) == len(before) + 1
        assert after == naive_reference(figure1, STATUS_PARAM_TEXT, {"status": "professor"})

    def test_stale_detection_after_catalog_change(self, figure1):
        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        assert not prepared.is_stale()
        figure1.create_index("employees", "enr")
        assert prepared.is_stale()

    def test_stale_prepared_query_refuses_to_execute(self, figure1):
        from repro.errors import PlanError

        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        figure1.create_index("employees", "enr")
        with pytest.raises(PlanError, match="stale"):
            prepared.execute({"status": "professor"})
        # Re-preparing through the service picks up the new catalog version.
        fresh = service.prepare(STATUS_PARAM_TEXT)
        assert fresh.execute({"status": "professor"}).relation == naive_reference(
            figure1, STATUS_PARAM_TEXT, {"status": "professor"}
        )

    def test_emptiness_transition_staleness_on_held_handles(self, figure1):
        """A plan compiled while a relation was empty baked in the Lemma 1
        adaptation; when the relation refills, the held handle must refuse to
        run the now-wrong constant plan."""
        from repro.errors import PlanError

        papers = figure1.relation("papers")
        saved = list(papers.elements())
        papers.assign([])
        service = connect(figure1).service
        text = "[<e.ename> OF EACH e IN employees: ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))]"
        prepared = service.prepare(text)
        assert prepared.execute().relation == execute_naive(figure1, text)
        papers.assign(saved)  # papers: empty -> non-empty
        assert prepared.is_stale()
        with pytest.raises(PlanError, match="stale"):
            prepared.execute()
        # Re-preparing through the service is keyed on the emptiness signature:
        assert service.execute(text).relation == execute_naive(figure1, text)

    def test_unrelated_emptiness_transition_does_not_stale_the_handle(self, figure1):
        """Clearing a relation the query never ranges over must not break a
        held prepared handle (staleness is restricted to referenced ranges)."""
        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)  # ranges over employees only
        assert prepared.referenced_relations == frozenset({"employees"})
        courses = figure1.relation("courses")
        saved = list(courses.elements())
        courses.assign([])
        assert not prepared.is_stale()
        assert prepared.execute({"status": "professor"}).relation == naive_reference(
            figure1, STATUS_PARAM_TEXT, {"status": "professor"}
        )
        courses.assign(saved)

    def test_batch_refuses_stale_prepared_handles(self, figure1):
        from repro.errors import PlanError

        service = connect(figure1).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        figure1.create_index("employees", "enr")
        with pytest.raises(PlanError, match="stale"):
            service.execute_batch([(prepared, {"status": "professor"})])

    def test_warm_memo_does_not_bypass_binding_validation(self, figure1):
        """1977.0 == 1977 with equal hashes; validation must still reject it
        even when the 1977 memo entry is warm."""
        prepared = connect(figure1).service.prepare(NO_PAPERS_IN_YEAR_PARAM_TEXT)
        prepared.execute({"year": 1977})
        with pytest.raises(BindingError):
            prepared.execute({"year": 1977.0})
        with pytest.raises(BindingError):
            prepared.execute({"year": True})

    def test_every_occurrence_type_is_enforced(self, figure1):
        """A parameter shared by comparably-typed components must satisfy the
        type of each occurrence, like the literal-constant equivalent."""
        text = """
        [<e.ename> OF EACH e IN employees:
            (e.enr = $n) AND SOME p IN papers ((p.pyear = $n))]
        """
        prepared = connect(figure1).service.prepare(text)
        with pytest.raises(BindingError, match="yeartype"):
            prepared.execute({"n": 3})  # valid enumbertype, outside yeartype
        result = prepared.execute({"n": 1977})  # hits no employee, but valid
        assert result.relation == naive_reference(figure1, text, {"n": 1977})

    def test_restricted_range_satisfiability_changes_stay_correct(self, figure1):
        """A cached plan must not bake in restricted-range satisfiability:
        the service defers that decision to the runtime fallback, so data
        changes inside a non-empty relation cannot stale the plan."""
        text = (
            "[<e.ename> OF EACH e IN employees: "
            "ALL p IN [EACH p IN papers: (p.pyear = 1990)] (e.enr <> p.penr)]"
        )
        service = connect(figure1).service
        prepared = service.prepare(text)
        # No 1990 papers: the runtime fallback handles the empty instantiation.
        empty = prepared.execute()
        assert empty.used_strategy3_fallback
        assert empty.relation == execute_naive(figure1, text)
        # Insert a matching paper (papers stays non-empty, catalog unchanged).
        record = figure1.relation("papers").insert(
            {"penr": 1, "pyear": 1990, "ptitle": "On Staleness"}
        )
        assert not prepared.is_stale()
        assert prepared.execute().relation == execute_naive(figure1, text)
        # And back out again.
        assert figure1.relation("papers").delete(record)
        assert prepared.execute().relation == execute_naive(figure1, text)

    def test_parameterized_extended_range_uses_runtime_fallback(self, figure1):
        """A $param inside a user-written extended range cannot be decided at
        prepare time; an empty instantiation must take the Strategy 3
        fallback at execution instead of failing at prepare."""
        text = """
        [<e.ename> OF EACH e IN employees:
            ALL p IN [EACH p IN papers: (p.pyear = $year)] (e.enr <> p.penr)]
        """
        prepared = connect(figure1).service.prepare(text)
        empty_year = prepared.execute({"year": 1901})  # no 1901 papers
        assert empty_year.used_strategy3_fallback
        assert empty_year.relation == naive_reference(figure1, text, {"year": 1901})
        assert prepared.execute({"year": 1977}).relation == naive_reference(
            figure1, text, {"year": 1977}
        )

    def test_service_execute_snapshots_plan_cache_counters(self, figure1):
        """The hit/miss of this very request survives into result.statistics."""
        service = connect(figure1).service
        first = service.execute(STATUS_PARAM_TEXT, {"status": "professor"})
        assert first.statistics["plan_cache_misses"] == 1
        assert first.statistics["plan_cache_hits"] == 0
        second = service.execute(STATUS_PARAM_TEXT, {"status": "student"})
        assert second.statistics["plan_cache_hits"] == 1
        assert second.statistics["plan_cache_misses"] == 0


class TestBindingValidation:
    def test_missing_binding_raises(self, figure1):
        prepared = connect(figure1).service.prepare(RUNNING_QUERY_PARAM_TEXT)
        with pytest.raises(BindingError):
            prepared.execute({"status": "professor"})

    def test_binding_for_parameterless_query_raises(self, figure1):
        prepared = connect(figure1).service.prepare(
            "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]"
        )
        with pytest.raises(BindingError):
            prepared.execute({"status": "professor"})

    def test_parameterless_query_executes_without_bindings(self, figure1):
        prepared = connect(figure1).service.prepare(
            "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]"
        )
        expected = execute_naive(
            figure1,
            "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]",
        )
        assert prepared.execute().relation == expected

    def test_unhashable_binding_values_still_execute(self, figure1):
        """Unkeyable bindings skip the memos but must stay correct."""

        class OddInt(int):
            __hash__ = None  # type: ignore[assignment]

        prepared = connect(figure1).service.prepare(NO_PAPERS_IN_YEAR_PARAM_TEXT)
        result = prepared.execute({"year": OddInt(1977)})
        assert result.relation == naive_reference(
            figure1, NO_PAPERS_IN_YEAR_PARAM_TEXT, {"year": 1977}
        )


class TestStrategyIndependence:
    @pytest.mark.parametrize(
        "options",
        [
            StrategyOptions.all_strategies(),
            StrategyOptions.none(),
            StrategyOptions.only(parallel_collection=True, one_step_nested=True),
            StrategyOptions(separate_existential_conjunctions=True),
        ],
        ids=["all", "none", "s1+s2", "separated"],
    )
    def test_prepared_execution_matches_naive_under_every_configuration(
        self, figure1, options
    ):
        service = connect(figure1, options=options).service
        for name, (text, bindings) in parameterized_queries().items():
            prepared = service.prepare(text)
            for values in bindings:
                for _ in range(2):
                    assert prepared.execute(values).relation == naive_reference(
                        figure1, text, values
                    ), (name, values)

    def test_collection_memo_disabled_still_matches(self):
        database = build_university_database(scale=1)
        from repro.config import ServiceOptions

        service = connect(
            database, service_options=ServiceOptions(collection_cache_size=0)
        ).service
        prepared = service.prepare(STATUS_PARAM_TEXT)
        for _ in range(2):
            assert prepared.execute({"status": "professor"}).relation == naive_reference(
                database, STATUS_PARAM_TEXT, {"status": "professor"}
            )
