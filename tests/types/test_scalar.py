"""Unit tests for the PASCAL/R scalar types."""

import pytest

from repro.errors import TypeSystemError, ValidationError
from repro.types.scalar import (
    BOOLEAN,
    CHAR,
    INTEGER,
    CharArray,
    Enumeration,
    EnumValue,
    Subrange,
    compare_values,
    negate_operator,
    swap_operator,
)


class TestIntegerType:
    def test_contains_integers(self):
        assert INTEGER.contains(5)
        assert INTEGER.contains(-3)

    def test_rejects_booleans_and_strings(self):
        assert not INTEGER.contains(True)
        assert not INTEGER.contains("5")

    def test_coerce_passes_integers_through(self):
        assert INTEGER.coerce(42) == 42

    def test_coerce_rejects_non_integers(self):
        with pytest.raises(ValidationError):
            INTEGER.coerce("42")

    def test_comparable_with_subrange(self):
        assert INTEGER.is_comparable_with(Subrange(1, 10))


class TestSubrange:
    def test_bounds_are_inclusive(self):
        year = Subrange(1900, 1999, "yeartype")
        assert year.contains(1900)
        assert year.contains(1999)
        assert not year.contains(2000)

    def test_invalid_bounds_raise(self):
        with pytest.raises(TypeSystemError):
            Subrange(10, 1)

    def test_default_name(self):
        assert Subrange(1, 99).name == "1..99"

    def test_coerce_outside_range_raises(self):
        with pytest.raises(ValidationError):
            Subrange(1, 99).coerce(100)

    def test_coerce_inside_range(self):
        assert Subrange(1, 99).coerce(50) == 50


class TestBooleanAndChar:
    def test_boolean_coerce(self):
        assert BOOLEAN.coerce(True) is True
        with pytest.raises(ValidationError):
            BOOLEAN.coerce(1)

    def test_char_requires_single_character(self):
        assert CHAR.coerce("x") == "x"
        with pytest.raises(ValidationError):
            CHAR.coerce("xy")


class TestCharArray:
    def test_pads_to_declared_length(self):
        name = CharArray(10, "nametype")
        assert name.coerce("Highman") == "Highman   "

    def test_rejects_too_long_strings(self):
        with pytest.raises(ValidationError):
            CharArray(3).coerce("abcd")

    def test_rejects_non_strings(self):
        with pytest.raises(ValidationError):
            CharArray(3).coerce(123)

    def test_needs_positive_length(self):
        with pytest.raises(TypeSystemError):
            CharArray(0)

    def test_padded_values_compare_equal_after_strip(self):
        name = CharArray(10)
        assert compare_values("=", name.coerce("Highman"), "Highman")

    def test_length_counts_characters_not_bytes(self):
        # "Hütter" is 6 characters but 7 UTF-8 bytes: a byte-counted
        # implementation would reject it from CharArray(6) or pad short.
        name = CharArray(6, "nametype")
        assert name.contains("Hütter")
        assert name.coerce("Hütter") == "Hütter"
        assert len(CharArray(10).coerce("Hütter")) == 10

    def test_non_ascii_too_long_is_rejected_by_character_count(self):
        with pytest.raises(ValidationError):
            CharArray(5).coerce("Hütter")  # 6 characters

    def test_non_ascii_padded_values_compare_equal_after_strip(self):
        assert compare_values("=", CharArray(10).coerce("Schäler"), "Schäler")
        assert compare_values(
            "=", CharArray(10).coerce("Özsu"), CharArray(20).coerce("Özsu")
        )


class TestEnumeration:
    @pytest.fixture
    def level(self):
        return Enumeration("leveltype", ("freshman", "sophomore", "junior", "senior"))

    def test_value_lookup(self, level):
        assert level.value("junior").ordinal == 2

    def test_attribute_access(self, level):
        assert level.sophomore == level.value("sophomore")

    def test_unknown_label_raises(self, level):
        with pytest.raises(ValidationError):
            level.value("graduate")

    def test_ordering_follows_declaration(self, level):
        assert level.freshman < level.sophomore < level.junior < level.senior

    def test_paper_comparison_clevel_le_sophomore(self, level):
        assert compare_values("<=", level.freshman, level.sophomore)
        assert compare_values("<=", level.sophomore, level.sophomore)
        assert not compare_values("<=", level.junior, level.sophomore)

    def test_coerce_accepts_labels_and_values(self, level):
        assert level.coerce("senior") == level.senior
        assert level.coerce(level.senior) == level.senior

    def test_coerce_rejects_foreign_enum_values(self, level):
        status = Enumeration("statustype", ("student", "professor"))
        with pytest.raises(ValidationError):
            level.coerce(status.professor)

    def test_cross_enum_ordering_raises(self, level):
        status = Enumeration("statustype", ("student", "professor"))
        with pytest.raises(TypeSystemError):
            _ = level.freshman < status.professor

    def test_equality_with_label_string(self, level):
        assert level.junior == "junior"
        assert level.junior != "senior"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TypeSystemError):
            Enumeration("bad", ("a", "a"))

    def test_empty_enumeration_rejected(self):
        with pytest.raises(TypeSystemError):
            Enumeration("bad", ())

    def test_values_in_declaration_order(self, level):
        assert [v.label for v in level.values()] == [
            "freshman",
            "sophomore",
            "junior",
            "senior",
        ]

    def test_enum_value_hashable(self, level):
        assert len({level.freshman, level.value("freshman")}) == 1


class TestOperators:
    @pytest.mark.parametrize(
        "op,negated",
        [("=", "<>"), ("<>", "="), ("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")],
    )
    def test_negate_operator(self, op, negated):
        assert negate_operator(op) == negated

    @pytest.mark.parametrize(
        "op,swapped",
        [("=", "="), ("<>", "<>"), ("<", ">"), ("<=", ">="), (">", "<"), (">=", "<=")],
    )
    def test_swap_operator(self, op, swapped):
        assert swap_operator(op) == swapped

    def test_negation_is_involution(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert negate_operator(negate_operator(op)) == op

    def test_swap_is_involution(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert swap_operator(swap_operator(op)) == op

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 3, 3, True),
            ("<>", 3, 3, False),
            ("<", 3, 4, True),
            ("<=", 4, 4, True),
            (">", 5, 4, True),
            (">=", 3, 4, False),
        ],
    )
    def test_compare_values(self, op, left, right, expected):
        assert compare_values(op, left, right) is expected

    def test_compare_values_unknown_operator(self):
        with pytest.raises(TypeSystemError):
            compare_values("==", 1, 1)

    def test_negate_semantics(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            for left in range(0, 4):
                for right in range(0, 4):
                    assert compare_values(op, left, right) != compare_values(
                        negate_operator(op), left, right
                    )

    def test_swap_semantics(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            for left in range(0, 4):
                for right in range(0, 4):
                    assert compare_values(op, left, right) == compare_values(
                        swap_operator(op), right, left
                    )
