"""Unit tests for relation schemas."""

import pytest

from repro.errors import SchemaError, ValidationError
from repro.types.scalar import INTEGER, CharArray, Enumeration, Subrange
from repro.types.schema import Field, RelationSchema

STATUS = Enumeration("statustype", ("student", "technician", "assistant", "professor"))


@pytest.fixture
def employees_schema() -> RelationSchema:
    return RelationSchema(
        "employees",
        [
            ("enr", Subrange(1, 99, "enumbertype")),
            ("ename", CharArray(10, "nametype")),
            ("estatus", STATUS),
        ],
        key=["enr"],
    )


class TestConstruction:
    def test_field_names_in_order(self, employees_schema):
        assert employees_schema.field_names == ("enr", "ename", "estatus")

    def test_key_defaults_to_all_fields(self):
        schema = RelationSchema("pairs", [("a", INTEGER), ("b", INTEGER)])
        assert schema.key == ("a", "b")

    def test_mapping_fields_accepted(self):
        schema = RelationSchema("m", {"x": INTEGER, "y": INTEGER}, key=["x"])
        assert schema.field_names == ("x", "y")

    def test_field_objects_accepted(self):
        schema = RelationSchema("f", [Field("x", INTEGER)])
        assert schema.field_type("x") is INTEGER

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("empty", [])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("dup", [("a", INTEGER), ("a", INTEGER)])

    def test_unknown_key_component_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", [("a", INTEGER)], key=["b"])

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", [("a", INTEGER)], key=[])

    def test_repeated_key_component_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", [("a", INTEGER)], key=["a", "a"])

    def test_invalid_identifier_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", [("not valid", INTEGER)])


class TestLookups:
    def test_contains_and_has_field(self, employees_schema):
        assert "ename" in employees_schema
        assert employees_schema.has_field("ename")
        assert not employees_schema.has_field("salary")

    def test_field_type(self, employees_schema):
        assert employees_schema.field_type("estatus") is STATUS

    def test_field_type_unknown_raises(self, employees_schema):
        with pytest.raises(SchemaError):
            employees_schema.field_type("salary")

    def test_field_position(self, employees_schema):
        assert employees_schema.field_position("estatus") == 2

    def test_len_and_iter(self, employees_schema):
        assert len(employees_schema) == 3
        assert [f.name for f in employees_schema] == ["enr", "ename", "estatus"]


class TestDerivedSchemas:
    def test_project(self, employees_schema):
        projected = employees_schema.project(["ename"])
        assert projected.field_names == ("ename",)
        assert projected.key == ("ename",)

    def test_project_unknown_field_raises(self, employees_schema):
        with pytest.raises(SchemaError):
            employees_schema.project(["salary"])

    def test_rename(self, employees_schema):
        renamed = employees_schema.rename({"enr": "id"})
        assert renamed.field_names == ("id", "ename", "estatus")
        assert renamed.key == ("id",)

    def test_concat(self, employees_schema):
        other = RelationSchema("extra", [("salary", INTEGER)])
        combined = employees_schema.concat(other)
        assert combined.field_names == ("enr", "ename", "estatus", "salary")

    def test_concat_clash_raises(self, employees_schema):
        with pytest.raises(SchemaError):
            employees_schema.concat(employees_schema)


class TestValues:
    def test_coerce_values_orders_and_coerces(self, employees_schema):
        values = employees_schema.coerce_values(
            {"estatus": "professor", "enr": 7, "ename": "Jarke"}
        )
        assert values[0] == 7
        assert values[1] == "Jarke".ljust(10)
        assert values[2] == STATUS.professor

    def test_coerce_values_missing_raises(self, employees_schema):
        with pytest.raises(SchemaError):
            employees_schema.coerce_values({"enr": 7})

    def test_coerce_values_extra_raises(self, employees_schema):
        with pytest.raises(SchemaError):
            employees_schema.coerce_values(
                {"enr": 7, "ename": "x", "estatus": "student", "salary": 1}
            )

    def test_coerce_values_bad_type_raises(self, employees_schema):
        with pytest.raises(ValidationError):
            employees_schema.coerce_values({"enr": 7, "ename": "x", "estatus": "ceo"})

    def test_key_of_mapping_and_sequence(self, employees_schema):
        assert employees_schema.key_of({"enr": 3, "ename": "x", "estatus": "student"}) == (3,)
        assert employees_schema.key_of((3, "x", STATUS.student)) == (3,)

    def test_describe_mentions_key_and_fields(self, employees_schema):
        text = employees_schema.describe()
        assert "RELATION <enr>" in text
        assert "estatus" in text
