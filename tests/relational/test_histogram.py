"""The statistics subsystem: exact counts, summaries, sketches, estimator.

The property test mirrors ``test_index_maintenance``: random interleavings
of insert / delete / assign / clear against a relation with attached
:class:`TableStatistics`, asserting after every step that the incrementally
maintained statistics are **byte-identical** to a fresh rebuild from the
relation's contents — exact counts and every derived summary structure
(hot keys, both equi-depth histograms, the KMV sketch), on both storage
backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.histogram import (
    HOT_KEYS,
    KMV_K,
    STALENESS_THRESHOLD,
    ColumnSketch,
    ColumnSummary,
    TableStatistics,
    estimate_join,
)
from repro.relational.partition import stable_hash
from repro.relational.statistics import estimate_join_cardinality
from repro.types.scalar import INTEGER, Subrange

_SMALL = Subrange(0, 9, "small")

_OPS = st.lists(
    st.tuples(
        st.sampled_from(("insert", "delete", "assign", "clear")),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=30,
)


def _make_database(paged: bool) -> Database:
    database = Database("stats", paged=paged)
    database.create_relation(
        "r", [("k", INTEGER), ("v", _SMALL)], key=["k"], page_capacity=4
    )
    return database


def _apply(relation, op: str, key: int, value: int, state: dict[int, int]) -> None:
    if op == "insert":
        if state.get(key, value) != value:
            return  # would be a key violation; not what this test is about
        relation.insert({"k": key, "v": value})
        state[key] = value
    elif op == "delete":
        relation.delete_key(key)
        state.pop(key, None)
    elif op == "assign":
        state.pop(key, None)
        state[key] = value
        relation.assign([{"k": k, "v": v} for k, v in sorted(state.items())])
    else:  # clear
        relation.clear()
        state.clear()


def _canonical(summary: ColumnSummary) -> tuple:
    """Every derived structure, in a deterministic order — the byte identity."""
    return (
        summary.total,
        summary.distinct,
        sorted(summary.hot.items(), key=lambda item: stable_hash(item[0])),
        summary.hash_buckets,
        summary.value_buckets,
        summary.kmv,
    )


def _assert_statistics_exact(maintained: TableStatistics, relation) -> None:
    """Maintained counts and summaries equal a from-scratch rebuild."""
    rebuilt = TableStatistics(relation)
    for name, column in maintained.columns.items():
        fresh = rebuilt.columns[name]
        assert column.counts == fresh.counts, name
        assert column.total == fresh.total, name
        assert column.distinct == fresh.distinct, name
        # The derivation is a pure function of the counts: force both sides
        # and compare every structure the estimators read.
        assert _canonical(ColumnSummary(column.counts)) == _canonical(
            ColumnSummary(fresh.counts)
        ), name


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_random_interleavings_keep_statistics_exact(paged: bool, ops) -> None:
    database = _make_database(paged)
    relation = database.relation("r")
    stats = database.table_statistics("r")
    state: dict[int, int] = {}
    for op, key, value in ops:
        _apply(relation, op, key, value, state)
        assert {record["k"]: record["v"] for record in relation.elements()} == state
        _assert_statistics_exact(stats, relation)


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
def test_raw_inserts_maintain_statistics_too(paged: bool) -> None:
    from repro.relational.record import Record

    database = _make_database(paged)
    relation = database.relation("r")
    stats = database.table_statistics("r")
    relation.insert_raw(Record(relation.schema, {"k": 1, "v": 5}))
    relation.bulk_insert_raw([Record(relation.schema, {"k": 2, "v": 5})])
    assert stats.frequency("v", 5) == 2
    relation.insert_raw(Record(relation.schema, {"k": 1, "v": 7}))  # overwrite
    assert stats.frequency("v", 5) == 1
    assert stats.frequency("v", 7) == 1
    _assert_statistics_exact(stats, relation)


# --------------------------------------------------------------- summaries


class TestColumnSummary:
    def test_uniform_data_has_no_hot_keys(self):
        summary = ColumnSummary({value: 3 for value in range(100)})
        assert summary.hot == {}
        assert summary.total == 300
        assert summary.distinct == 100
        assert abs(summary.frequency(17) - 3.0) < 1.5

    def test_hot_keys_are_exact(self):
        counts = {value: 1 for value in range(100)}
        counts["hot"] = 500
        summary = ColumnSummary(counts)
        assert summary.frequency("hot") == 500.0
        assert summary.hot["hot"] == 500
        assert len(summary.hot) <= HOT_KEYS

    def test_range_selectivity_walks_the_value_histogram(self):
        summary = ColumnSummary({value: 1 for value in range(100)})
        assert summary.selectivity("<", 0) <= 0.1
        assert summary.selectivity("<=", 99) >= 0.9
        half = summary.selectivity("<=", 49)
        assert 0.35 <= half <= 0.65
        assert abs(summary.selectivity(">", 49) - (1.0 - half)) < 1e-9

    def test_equality_selectivity_uses_frequency(self):
        counts = {value: 1 for value in range(100)}
        counts["hot"] = 100
        summary = ColumnSummary(counts)
        assert summary.selectivity("=", "hot") == pytest.approx(0.5)
        assert summary.selectivity("<>", "hot") == pytest.approx(0.5)

    def test_kmv_estimates_large_distinct_counts(self):
        summary = ColumnSummary({value: 1 for value in range(5000)})
        assert len(summary.kmv) == KMV_K
        estimate = summary.distinct_estimate()
        assert 2500 <= estimate <= 10000  # within 2x at k=32

    def test_small_distinct_counts_are_exact(self):
        summary = ColumnSummary({value: 1 for value in range(10)})
        assert summary.distinct_estimate() == 10.0


class TestEstimateJoin:
    def test_uniform_matches_the_classic_formula(self):
        a = ColumnSketch(value for value in range(200) for _ in range(2))
        b = ColumnSketch(value for value in range(100) for _ in range(3))
        classic = estimate_join_cardinality(400, 300, 200, 100)
        got = estimate_join(a, b)
        assert got == pytest.approx(classic, rel=0.5)

    def test_skewed_join_is_priced_near_its_true_size(self):
        hot_side = ColumnSketch([0] * 300 + list(range(1, 101)))
        other = ColumnSketch([0] * 300 + list(range(101, 200)))
        true_size = 300 * 300  # only the hot key matches
        got = estimate_join(hot_side, other)
        assert got == pytest.approx(true_size, rel=0.2)
        # The uniform formula is catastrophically wrong on the same data.
        classic = estimate_join_cardinality(400, 399, 101, 100)
        assert classic < true_size / 50

    def test_empty_side_estimates_zero(self):
        assert estimate_join(ColumnSketch([]), ColumnSketch([1, 2])) == 0.0


# --------------------------------------------------------------- staleness


class TestStaleness:
    def test_summary_is_cached_until_threshold(self):
        database = _make_database(paged=False)
        relation = database.relation("r")
        stats = database.table_statistics("r")
        relation.insert({"k": 0, "v": 1})
        column = stats.columns["v"]
        first = column.summary(STALENESS_THRESHOLD)
        relation.insert({"k": 1, "v": 2})  # stale, but under the threshold
        assert column.summary(STALENESS_THRESHOLD) is first
        for key in range(2, STALENESS_THRESHOLD + 3):
            relation.insert({"k": key, "v": key % 10})
        assert column.summary(STALENESS_THRESHOLD) is not first

    def test_rebuilds_are_counted(self):
        database = _make_database(paged=False)
        relation = database.relation("r")
        relation.insert({"k": 0, "v": 1})
        stats = database.table_statistics("r")
        database.reset_statistics()
        stats.summary("v")
        assert database.statistics.histogram_rebuilds == 1
        stats.summary("v")  # cached — no second rebuild
        assert database.statistics.histogram_rebuilds == 1
        database.refresh_statistics(["r"])
        assert database.statistics.histogram_rebuilds == 1 + len(stats.columns)

    def test_drop_relation_detaches_statistics(self):
        database = _make_database(paged=False)
        database.table_statistics("r")
        database.drop_relation("r")
        assert database.table_statistics("r", create=False) is None
