"""Unit tests for the database catalog and the access statistics."""

import pytest

from repro.errors import CatalogError
from repro.relational.database import Database
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.statistics import COLLECTION, COMBINATION, AccessStatistics
from repro.storage.storedrelation import StoredRelation
from repro.types.scalar import INTEGER


@pytest.fixture
def database() -> Database:
    db = Database("test")
    employees = db.create_relation("employees", [("enr", INTEGER), ("boss", INTEGER)], key=["enr"])
    for enr in range(1, 6):
        employees.insert({"enr": enr, "boss": enr // 2})
    db.create_relation("projects", [("pnr", INTEGER)], key=["pnr"])
    return db


class TestCatalog:
    def test_create_and_lookup(self, database):
        assert database.relation("employees").name == "employees"
        assert database["projects"].is_empty()
        assert "employees" in database

    def test_paged_database_uses_stored_relations(self, database):
        assert isinstance(database.relation("employees"), StoredRelation)

    def test_unpaged_database_uses_plain_relations(self):
        db = Database("plain", paged=False)
        relation = db.create_relation("r", [("a", INTEGER)])
        assert not isinstance(relation, StoredRelation)

    def test_duplicate_relation_raises(self, database):
        with pytest.raises(CatalogError):
            database.create_relation("employees", [("enr", INTEGER)])

    def test_unknown_relation_raises(self, database):
        with pytest.raises(CatalogError):
            database.relation("nonexistent")

    def test_drop_relation(self, database):
        database.drop_relation("projects")
        assert not database.has_relation("projects")
        with pytest.raises(CatalogError):
            database.drop_relation("projects")

    def test_cardinalities(self, database):
        assert database.cardinalities() == {"employees": 5, "projects": 0}

    def test_relation_names_and_iteration(self, database):
        assert database.relation_names() == ["employees", "projects"]
        assert len(list(database.relations())) == 2

    def test_add_external_relation(self, database):
        from repro.relational.relation import Relation
        from repro.types.schema import RelationSchema

        extra = Relation("extra", RelationSchema("extra", [("x", INTEGER)]))
        database.add_relation(extra)
        assert database.relation("extra") is extra
        assert extra.tracker is database.statistics

    def test_describe_lists_relations_and_indexes(self, database):
        database.create_index("employees", "boss")
        text = database.describe()
        assert "employees" in text
        assert "employees.boss" in text


class TestPermanentIndexes:
    def test_create_and_lookup_index(self, database):
        index = database.create_index("employees", "boss")
        assert isinstance(index, HashIndex)
        assert database.index_for("employees", "boss") is index
        assert database.index_for("employees", "enr") is None

    def test_sorted_index_for_range_operator(self, database):
        index = database.create_index("employees", "boss", operator="<=")
        assert isinstance(index, SortedIndex)

    def test_index_probe(self, database):
        index = database.create_index("employees", "boss")
        assert len(index.probe(1)) == 2  # employees 2 and 3 have boss 1

    def test_refresh_indexes_after_insert(self, database):
        database.create_index("employees", "boss")
        database.relation("employees").insert({"enr": 10, "boss": 1})
        database.refresh_indexes()
        assert len(database.index_for("employees", "boss").probe(1)) == 3

    def test_drop_relation_drops_its_indexes(self, database):
        database.create_index("employees", "boss")
        database.drop_relation("employees")
        assert database.index_for("employees", "boss") is None

    def test_drop_index(self, database):
        database.create_index("employees", "boss")
        database.drop_index("employees", "boss")
        assert database.index_for("employees", "boss") is None


class TestStatistics:
    def test_scans_and_elements(self, database):
        list(database.relation("employees").scan())
        stats = database.statistics
        assert stats.scans("employees") == 1
        assert stats.elements_read("employees") == 5
        assert stats.elements_read() == 5
        assert stats.total_scans() == 1

    def test_reset(self, database):
        list(database.relation("employees").scan())
        database.reset_statistics()
        assert database.statistics.total_scans() == 0
        assert database.statistics.intermediate_tuples == 0

    def test_phase_attribution(self):
        stats = AccessStatistics()
        with stats.phase(COLLECTION):
            stats.record_element_read("r", 3)
        with stats.phase(COMBINATION):
            stats.record_element_read("r", 2)
        stats.record_element_read("r", 10)
        assert stats.phase_elements(COLLECTION) == 3
        assert stats.phase_elements(COMBINATION) == 2
        assert stats.elements_read("r") == 15

    def test_nested_phases_restore_previous(self):
        stats = AccessStatistics()
        with stats.phase(COLLECTION):
            with stats.phase(COMBINATION):
                assert stats.current_phase == COMBINATION
            assert stats.current_phase == COLLECTION
        assert stats.current_phase is None

    def test_intermediate_and_page_counters(self):
        stats = AccessStatistics()
        stats.record_intermediate(10)
        stats.record_intermediate(5, relations=2)
        stats.record_page_read(hit=True)
        stats.record_page_read(hit=False)
        snapshot = stats.as_dict()
        assert snapshot["intermediate_tuples"] == 15
        assert snapshot["intermediate_relations"] == 3
        assert snapshot["page_hits"] == 1
        assert snapshot["page_misses"] == 1

    def test_summary_mentions_relations(self):
        stats = AccessStatistics()
        stats.record_scan("employees")
        assert "employees" in stats.summary()

    def test_insert_delete_counters(self, database):
        employees = database.relation("employees")
        employees.insert({"enr": 99, "boss": 1})
        employees.delete_key(99)
        counters = database.statistics.as_dict()["relations"]["employees"]
        assert counters["inserts"] >= 1
        assert counters["deletes"] == 1


class TestCounterReflection:
    """reset() and as_dict() must cover every public numeric counter.

    These tests enumerate the counters by reflection, so a counter added to
    ``AccessStatistics.__init__`` (like the service layer's plan-cache
    hits/misses) can never silently escape the reset or the snapshot.
    """

    @staticmethod
    def _numeric_counters(stats: AccessStatistics) -> list[str]:
        return [
            name
            for name, value in vars(stats).items()
            if not name.startswith("_")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ]

    def test_reset_zeroes_every_public_numeric_field(self):
        stats = AccessStatistics()
        names = self._numeric_counters(stats)
        assert names, "expected public numeric counters"
        for name in names:
            setattr(stats, name, 7)
        stats.record_scan("employees")
        stats.reset()
        for name in names:
            assert getattr(stats, name) == 0, name
        assert stats.as_dict()["relations"] == {}

    def test_snapshot_covers_every_public_numeric_field(self):
        stats = AccessStatistics()
        snapshot = stats.as_dict()
        for name in self._numeric_counters(stats):
            assert name in snapshot, name

    def test_plan_cache_counters_participate(self):
        stats = AccessStatistics()
        stats.record_plan_cache(hit=True)
        stats.record_plan_cache(hit=False)
        snapshot = stats.as_dict()
        assert snapshot["plan_cache_hits"] == 1
        assert snapshot["plan_cache_misses"] == 1
        stats.reset()
        assert stats.plan_cache_hits == 0
        assert stats.plan_cache_misses == 0

    def test_cost_model_counters_participate(self):
        stats = AccessStatistics()
        stats.record_histogram_rebuild()
        stats.record_reoptimization()
        stats.record_estimation_qerror(7.5)
        stats.record_estimation_qerror(2.0)  # max-tracking: the worst sticks
        snapshot = stats.as_dict()
        assert snapshot["histogram_rebuilds"] == 1
        assert snapshot["reoptimizations"] == 1
        assert snapshot["estimation_qerror_max"] == 7.5
        stats.reset()
        assert stats.histogram_rebuilds == 0
        assert stats.estimation_qerror_max == 0.0

    def test_mutation_epoch_survives_reset(self):
        stats = AccessStatistics()
        epoch = stats.mutation_epoch
        stats.record_insert("employees")
        stats.record_delete("employees")
        stats.record_mutation()
        assert stats.mutation_epoch == epoch + 3
        stats.reset()
        assert stats.mutation_epoch == epoch + 3
        assert "mutation_epoch" not in stats.as_dict()


class TestVersioning:
    def test_schema_version_bumps_on_catalog_mutations(self, database):
        version = database.schema_version
        database.create_relation("audit", [("anr", INTEGER)], key=["anr"])
        assert database.schema_version > version
        version = database.schema_version
        database.create_index("audit", "anr")
        assert database.schema_version > version
        version = database.schema_version
        database.drop_index("audit", "anr")
        assert database.schema_version > version
        version = database.schema_version
        database.drop_relation("audit")
        assert database.schema_version > version

    def test_dropping_a_missing_index_does_not_bump(self, database):
        version = database.schema_version
        database.drop_index("employees", "nonexistent")
        assert database.schema_version == version

    def test_exactly_one_bump_per_catalog_change(self, database):
        """Regression: each catalog operation bumps ``schema_version`` by
        exactly 1, including dropping a relation that carries indexes."""
        database.create_relation("audit", [("anr", INTEGER), ("ax", INTEGER)], key=["anr"])
        version = database.schema_version
        database.create_index("audit", "anr")
        assert database.schema_version == version + 1
        database.create_index("audit", "ax")
        assert database.schema_version == version + 2
        database.create_index("audit", "anr")  # re-create: one change again
        assert database.schema_version == version + 3
        database.drop_relation("audit")  # relation + two indexes: ONE change
        assert database.schema_version == version + 4

    def test_refresh_indexes_is_not_a_catalog_change(self, database):
        """Rebuilding index contents must not invalidate cached plans."""
        database.create_index("employees", "boss")
        version = database.schema_version
        database.refresh_indexes()
        assert database.schema_version == version
        assert len(database.index_for("employees", "boss").probe(1)) == 2

    def test_data_version_tracks_relation_mutations(self, database):
        employees = database.relation("employees")
        version = database.data_version
        employees.insert({"enr": 77, "boss": 1})
        assert database.data_version > version
        version = database.data_version
        employees.delete_key(77)
        assert database.data_version > version
        version = database.data_version
        employees.assign(list(employees.elements()))
        assert database.data_version > version
