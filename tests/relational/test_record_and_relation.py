"""Unit tests for records, relations, selected variables and references."""

import pytest

from repro.errors import (
    DanglingReferenceError,
    DuplicateKeyError,
    MissingElementError,
    SchemaError,
)
from repro.relational.record import Record
from repro.relational.relation import Relation
from repro.relational.statistics import AccessStatistics
from repro.types.scalar import INTEGER, CharArray, Enumeration
from repro.types.schema import RelationSchema

STATUS = Enumeration("statustype", ("student", "technician", "assistant", "professor"))


@pytest.fixture
def schema() -> RelationSchema:
    return RelationSchema(
        "employees",
        [("enr", INTEGER), ("ename", CharArray(10)), ("estatus", STATUS)],
        key=["enr"],
    )


@pytest.fixture
def employees(schema) -> Relation:
    relation = Relation("employees", schema)
    relation.insert({"enr": 1, "ename": "Jarke", "estatus": "professor"})
    relation.insert({"enr": 2, "ename": "Schmidt", "estatus": "professor"})
    relation.insert({"enr": 3, "ename": "Mall", "estatus": "assistant"})
    return relation


class TestRecord:
    def test_attribute_and_subscript_access(self, schema):
        record = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "professor"})
        assert record.enr == 1
        assert record["estatus"] == STATUS.professor

    def test_key(self, schema):
        record = Record(schema, {"enr": 5, "ename": "Koch", "estatus": "student"})
        assert record.key == (5,)

    def test_immutable(self, schema):
        record = Record(schema, {"enr": 5, "ename": "Koch", "estatus": "student"})
        with pytest.raises(AttributeError):
            record.enr = 6

    def test_equality_and_hash_are_value_based(self, schema):
        a = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "professor"})
        b = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "professor"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_tuple_construction_checks_arity(self, schema):
        with pytest.raises(SchemaError):
            Record(schema, (1, "x"))

    def test_replace(self, schema):
        record = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "student"})
        promoted = record.replace(estatus="professor")
        assert promoted.estatus == STATUS.professor
        assert record.estatus == STATUS.student

    def test_as_dict_and_project_values(self, schema):
        record = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "student"})
        assert record.as_dict()["enr"] == 1
        assert record.project_values(("estatus", "enr")) == (STATUS.student, 1)

    def test_get_with_default(self, schema):
        record = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "student"})
        assert record.get("salary", 0) == 0

    def test_unknown_attribute_raises(self, schema):
        record = Record(schema, {"enr": 1, "ename": "Jarke", "estatus": "student"})
        with pytest.raises(AttributeError):
            _ = record.salary


class TestRelationUpdates:
    def test_insert_and_len(self, employees):
        assert len(employees) == 3

    def test_insert_same_element_is_noop(self, employees):
        employees.insert({"enr": 1, "ename": "Jarke", "estatus": "professor"})
        assert len(employees) == 3

    def test_insert_conflicting_key_raises(self, employees):
        with pytest.raises(DuplicateKeyError):
            employees.insert({"enr": 1, "ename": "Impostor", "estatus": "student"})

    def test_insert_wrong_schema_record_raises(self, employees):
        other = RelationSchema("other", [("x", INTEGER)])
        with pytest.raises(SchemaError):
            employees.insert(Record(other, {"x": 1}))

    def test_delete_by_element_and_key(self, employees):
        assert employees.delete({"enr": 3, "ename": "Mall", "estatus": "assistant"})
        assert not employees.contains_key(3)
        assert employees.delete_key(2)
        assert len(employees) == 1

    def test_delete_missing_returns_false(self, employees):
        assert not employees.delete_key(99)

    def test_assign_replaces_contents(self, employees):
        employees.assign([{"enr": 9, "ename": "New", "estatus": "student"}])
        assert len(employees) == 1
        assert employees.contains_key(9)

    def test_clear_and_is_empty(self, employees):
        employees.clear()
        assert employees.is_empty()

    def test_copy_is_independent(self, employees):
        clone = employees.copy()
        clone.delete_key(1)
        assert employees.contains_key(1)
        assert not clone.contains_key(1)


class TestSelectedVariablesAndReferences:
    def test_selected_variable(self, employees):
        assert employees[1].ename.strip() == "Jarke"
        assert employees[(2,)].ename.strip() == "Schmidt"

    def test_selected_variable_missing_raises(self, employees):
        with pytest.raises(MissingElementError):
            employees[99]

    def test_reference_round_trip(self, employees):
        ref = employees.ref(1)
        assert ref.deref().ename.strip() == "Jarke"
        assert ref.exists()

    def test_reference_of_record(self, employees):
        record = employees[3]
        ref = employees.ref_of(record)
        assert ref.deref() == record

    def test_reference_for_missing_element_raises(self, employees):
        with pytest.raises(MissingElementError):
            employees.ref(99)

    def test_dangling_reference_detected(self, employees):
        ref = employees.ref(3)
        employees.delete_key(3)
        assert not ref.exists()
        with pytest.raises(DanglingReferenceError):
            ref.deref()

    def test_reference_equality_and_hash(self, employees):
        assert employees.ref(1) == employees.ref(1)
        assert employees.ref(1) != employees.ref(2)
        assert len({employees.ref(1), employees.ref(1)}) == 1

    def test_reference_component_shortcut(self, employees):
        assert employees.ref(2).component("estatus") == STATUS.professor

    def test_refs_iterates_all(self, employees):
        assert len(list(employees.refs())) == 3


class TestRelationSemantics:
    def test_contains_record_and_key(self, employees):
        record = employees[1]
        assert record in employees
        assert (1,) in employees
        assert 1 in employees

    def test_equality_is_set_based(self, schema, employees):
        other = Relation("other", schema)
        for record in list(employees)[::-1]:
            other.insert(record)
        assert other == employees

    def test_scan_counts_accesses(self, schema):
        stats = AccessStatistics()
        relation = Relation("employees", schema, tracker=stats)
        relation.insert({"enr": 1, "ename": "Jarke", "estatus": "professor"})
        relation.insert({"enr": 2, "ename": "Schmidt", "estatus": "professor"})
        list(relation.scan())
        list(relation.scan())
        assert stats.scans("employees") == 2
        assert stats.elements_read("employees") == 4

    def test_plain_iteration_is_untracked(self, schema):
        stats = AccessStatistics()
        relation = Relation("employees", schema, tracker=stats)
        relation.insert({"enr": 1, "ename": "Jarke", "estatus": "professor"})
        list(relation)
        assert stats.scans("employees") == 0

    def test_show_renders_table(self, employees):
        text = employees.show()
        assert "ename" in text
        assert "Jarke" in text

    def test_show_with_limit(self, employees):
        text = employees.show(limit=1)
        assert "more" in text
