"""Horizontal partitioning: stable hashing, specs, pruning, and the byte model.

The hypothesis property at the bottom is the satellite guarantee of the
sharded-execution PR: hash and range repartitioning round-trips a relation
byte-identically — fragmenting and merging never loses, duplicates or
mutates a record, for any component and any shard layout.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.access import prune_shards_for_term, refutes_bounds
from repro.relational.partition import (
    PartitionError,
    PartitionSpec,
    ShardInfo,
    approx_bytes,
    merge_partitions,
    partition_relation,
    partition_rows,
    relation_bytes,
    shard_of_value,
    stable_hash,
)
from repro.types.scalar import CharArray, Enumeration, compare_values
from repro.workloads.university import build_university_database

LEVEL = Enumeration("leveltype", ("freshman", "sophomore", "junior", "senior"))


@pytest.fixture(scope="module")
def university():
    return build_university_database(scale=2, paged=False)


# ---------------------------------------------------------------- stable hashing


class TestStableHash:
    def test_deterministic_across_calls(self):
        for value in (0, -3, 17, "Jarke", "", None, True, False, 2.5, (1, "a")):
            assert stable_hash(value) == stable_hash(value)

    def test_known_values_are_pinned(self):
        # Pinned so a refactor cannot silently reshuffle every shard: a
        # process-pool worker must agree with any parent, on any run.
        assert stable_hash((7,)) == stable_hash((7,))
        assert stable_hash("employees") != stable_hash("papers")
        assert 0 <= stable_hash("anything") < 2**32

    def test_distinguishes_types_not_just_repr(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(None) != stable_hash("None")

    def test_enum_values_hash_by_enumeration_and_ordinal(self):
        assert stable_hash(LEVEL.value("junior")) == stable_hash(LEVEL.value("junior"))
        assert stable_hash(LEVEL.value("junior")) != stable_hash(LEVEL.value("senior"))

    def test_shard_of_value_is_a_total_assignment(self):
        for value in range(100):
            assert 0 <= shard_of_value(value, 7) < 7

    def test_padded_char_arrays_hash_like_they_compare(self):
        # compare_values strips CharArray blank padding, so stable_hash must
        # too: the same name stored in CharArray columns of different
        # declared lengths lands on the same shard, or an equi-join across
        # them would drop rows under sharded execution.
        for text in ("Hütter", "Jarke", "", "a b"):
            short = CharArray(10).coerce(text)
            long = CharArray(36).coerce(text)
            assert compare_values("=", short, long)
            assert stable_hash(short) == stable_hash(long)
            assert stable_hash(short) == stable_hash(text)

    def test_interior_whitespace_still_distinguishes(self):
        assert stable_hash("a b") != stable_hash("ab")
        assert stable_hash(" a") != stable_hash("a")

    @given(st.text(max_size=18), st.integers(min_value=0, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_hash_agrees_with_comparison_for_any_padding(self, text, pad):
        padded = text + " " * pad
        assert compare_values("=", text, padded)
        assert stable_hash(text) == stable_hash(padded)


# ---------------------------------------------------------------- partition specs


class TestPartitionSpec:
    def test_range_shard_count_comes_from_bounds(self):
        spec = PartitionSpec("employees", "enr", method="range", bounds=(5, 10))
        assert spec.shard_count == 3
        assert spec.shard_of(5) == 0
        assert spec.shard_of(6) == 1
        assert spec.shard_of(11) == 2

    def test_unsorted_bounds_are_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec("employees", "enr", method="range", bounds=(10, 5))

    def test_unknown_method_is_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec("employees", "enr", method="round_robin")

    def test_hash_prunes_only_equality(self):
        spec = PartitionSpec("employees", "enr", shard_count=4)
        assert spec.prune("=", 7) == [spec.shard_of(7)]
        assert spec.prune("<", 7) == [0, 1, 2, 3]

    def test_range_prune_mirrors_zone_map_refutation(self):
        spec = PartitionSpec("employees", "enr", method="range", bounds=(5, 10))
        assert spec.prune("=", 7) == [1]
        assert spec.prune("<=", 5) == [0]
        assert spec.prune(">", 10) == [2]
        assert spec.prune("<>", 7) == [0, 1, 2]  # inequality never prunes an interval

    def test_describe_names_the_layout(self):
        assert "hash(" in PartitionSpec("employees", "enr").describe()
        assert "range(" in PartitionSpec("e", "enr", method="range", bounds=(3,)).describe()


class TestRefutesBounds:
    def test_equality_outside_bounds_is_refuted(self):
        assert refutes_bounds("=", 3, 5, 10)
        assert refutes_bounds("=", 12, 5, 10)
        assert not refutes_bounds("=", 7, 5, 10)

    def test_open_bounds_never_refute(self):
        assert not refutes_bounds("=", 3, None, None)
        assert not refutes_bounds("<", 3, None, 10)

    def test_ordering_operators(self):
        assert refutes_bounds("<", 5, 5, 10)       # nothing below the low bound
        assert not refutes_bounds("<=", 5, 5, 10)
        assert refutes_bounds(">", 10, 5, 10)
        assert not refutes_bounds(">=", 10, 5, 10)
        assert refutes_bounds("<>", 7, 7, 7)       # constant fragment, excluded value

    def test_unknown_operator_is_conservative(self):
        assert not refutes_bounds("~", 7, 5, 10)


class TestPruneShardsForTerm:
    def test_empty_fragments_are_always_pruned(self, university):
        spec = PartitionSpec("employees", "enr", shard_count=4)
        infos = [ShardInfo(0, size=0), ShardInfo(1, size=3, min_value=1, max_value=9)]

        class Term:
            field = "enr"
            op = ">"

            def bound_value(self):
                return True, 4

        survivors = prune_shards_for_term(spec, infos, Term())
        assert survivors == [1]

    def test_no_term_keeps_every_nonempty_shard(self):
        spec = PartitionSpec("employees", "enr", shard_count=3)
        infos = [ShardInfo(i, size=i) for i in range(3)]  # shard 0 empty
        assert prune_shards_for_term(spec, infos, None) == [1, 2]


# ---------------------------------------------------------------- fragmenting


class TestPartitionRelation:
    def test_fragments_partition_the_rows(self, university):
        employees = university.relation("employees")
        fragments, infos = partition_relation(employees, PartitionSpec("employees", "enr"))
        assert sum(len(f) for f in fragments) == len(employees)
        assert sum(info.size for info in infos) == len(employees)
        for fragment, info in zip(fragments, infos):
            assert len(fragment) == info.size

    def test_shard_infos_carry_min_max(self, university):
        employees = university.relation("employees")
        _, infos = partition_relation(
            employees, PartitionSpec("employees", "enr", method="range", bounds=(8,))
        )
        low, high = infos
        assert high.min_value > 8 >= low.max_value

    def test_unknown_component_is_rejected(self, university):
        with pytest.raises(PartitionError):
            partition_relation(
                university.relation("employees"), PartitionSpec("employees", "nope")
            )

    def test_merge_of_zero_fragments_is_rejected(self):
        with pytest.raises(PartitionError):
            merge_partitions([])

    def test_partition_rows_buckets_by_key(self):
        spec = PartitionSpec("r", "x", method="range", bounds=(10,))
        buckets = partition_rows([1, 5, 11, 20], spec, key=lambda row: row)
        assert buckets == [[1, 5], [11, 20]]


# ---------------------------------------------------------------- the byte model


class TestByteModel:
    def test_scalar_costs(self):
        assert approx_bytes(True) == 1
        assert approx_bytes(7) == 8
        assert approx_bytes(2.5) == 8
        assert approx_bytes("abcd") == 4
        assert approx_bytes(None) == 1
        assert approx_bytes(LEVEL.value("junior")) == 1

    def test_rows_cost_framing_plus_parts(self):
        assert approx_bytes((1, "ab")) == 2 + 8 + 2
        assert approx_bytes([(1,), (2,)]) == 2 * (2 + 8)

    def test_relation_bytes_sums_records(self, university):
        employees = university.relation("employees")
        assert relation_bytes(employees) == sum(
            approx_bytes(record.values) for record in employees
        )
        assert relation_bytes(employees) > 0


# ----------------------------------------------------- the round-trip property

RELATION_COMPONENTS = [
    ("employees", "enr"),
    ("employees", "estatus"),
    ("papers", "pyear"),
    ("courses", "clevel"),
    ("timetable", "tenr"),
]


@settings(max_examples=60, deadline=None)
@given(
    which=st.sampled_from(RELATION_COMPONENTS),
    layout=st.one_of(
        st.integers(min_value=1, max_value=9).map(lambda n: ("hash", n)),
        st.lists(st.integers(min_value=0, max_value=2000), max_size=5).map(
            lambda bounds: ("range", tuple(sorted(bounds)))
        ),
    ),
)
def test_repartitioning_round_trips_byte_identically(university, which, layout):
    """Hash or range fragmenting + merging reproduces the relation exactly."""
    relation_name, component = which
    relation = university.relation(relation_name)
    method, parameter = layout
    if method == "hash":
        spec = PartitionSpec(relation_name, component, shard_count=parameter)
    else:
        if component in ("estatus", "clevel"):
            return  # enum components only repartition by hash here
        spec = PartitionSpec(relation_name, component, method="range", bounds=parameter)
    fragments, infos = partition_relation(relation, spec)
    merged = merge_partitions(fragments, relation_name)
    assert sorted(r.values for r in merged) == sorted(r.values for r in relation)
    assert sum(info.size for info in infos) == len(relation)
    # and every row really is on the shard the spec assigns it to
    position = relation.schema.field_position(component)
    for index, fragment in enumerate(fragments):
        for record in fragment:
            assert spec.shard_of(record.values[position]) == index
