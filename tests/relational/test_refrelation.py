"""Unit tests for reference-typed relations (the Figure 2 structures)."""

import pytest

from repro.errors import ValidationError
from repro.relational.refrelation import (
    ReferenceType,
    make_indirect_join,
    make_ref_tuple_relation,
    make_single_list,
    ref_field_name,
)
from repro.relational.relation import Relation
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema


@pytest.fixture
def courses() -> Relation:
    schema = RelationSchema("courses", [("cnr", INTEGER), ("clevel", INTEGER)], key=["cnr"])
    relation = Relation("courses", schema)
    for cnr, level in [(1, 1), (2, 2), (3, 4)]:
        relation.insert({"cnr": cnr, "clevel": level})
    return relation


@pytest.fixture
def timetable() -> Relation:
    schema = RelationSchema("timetable", [("tcnr", INTEGER)], key=["tcnr"])
    relation = Relation("timetable", schema)
    for tcnr in (1, 2):
        relation.insert({"tcnr": tcnr})
    return relation


class TestReferenceType:
    def test_accepts_references_into_target(self, courses):
        rtype = ReferenceType("courses")
        ref = courses.ref(1)
        assert rtype.contains(ref)
        assert rtype.coerce(ref) is ref

    def test_rejects_foreign_references(self, courses, timetable):
        rtype = ReferenceType("courses")
        with pytest.raises(ValidationError):
            rtype.coerce(timetable.ref(1))

    def test_rejects_non_references(self):
        with pytest.raises(ValidationError):
            ReferenceType("courses").coerce(42)

    def test_untargeted_reference_type_accepts_any(self, courses, timetable):
        rtype = ReferenceType()
        assert rtype.contains(courses.ref(1))
        assert rtype.contains(timetable.ref(1))

    def test_comparability(self):
        assert ReferenceType("courses").is_comparable_with(ReferenceType("courses"))
        assert not ReferenceType("courses").is_comparable_with(ReferenceType("papers"))
        assert ReferenceType("courses").is_comparable_with(ReferenceType())

    def test_name(self):
        assert ReferenceType("courses").name == "@courses"


class TestConstructors:
    def test_ref_field_name(self):
        assert ref_field_name("c") == "c_ref"

    def test_single_list(self, courses):
        refs = [courses.ref(1), courses.ref(2)]
        single = make_single_list("sl_csoph", "c", courses, refs)
        assert len(single) == 2
        assert single.schema.field_names == ("c_ref",)
        stored = {rec.c_ref for rec in single}
        assert stored == set(refs)

    def test_indirect_join(self, courses, timetable):
        pairs = [(courses.ref(1), timetable.ref(1)), (courses.ref(2), timetable.ref(2))]
        ij = make_indirect_join("ij_c_t", "c", courses, "t", timetable, pairs)
        assert len(ij) == 2
        assert ij.schema.field_names == ("c_ref", "t_ref")

    def test_ref_tuple_relation(self, courses, timetable):
        rows = [(courses.ref(1), timetable.ref(2))]
        rel = make_ref_tuple_relation("combo", ["c", "t"], [courses, timetable], rows)
        assert len(rel) == 1
        record = rel.elements()[0]
        assert record.c_ref.deref().cnr == 1
        assert record.t_ref.deref().tcnr == 2

    def test_single_list_deduplicates(self, courses):
        refs = [courses.ref(1), courses.ref(1)]
        single = make_single_list("sl", "c", courses, refs)
        assert len(single) == 1
