"""Satellite regression: every counted algebra kernel feeds AccessStatistics.

PR 1 rewrote the hot kernels (``natural_join``/``project``/``union``/
``divide``/``semijoin``) to report ``comparisons`` and ``intermediates``
through the shared tracker; this audit extends the coverage to ``antijoin``,
``product``/``extend_product`` and ``theta_semijoin`` and pins the whole set
*by reflection*: the test discovers the counted kernels from their
signatures, so a kernel that silently loses its ``tracker`` parameter — or a
new kernel added without one — fails the audit rather than the benchmarks.
"""

from __future__ import annotations

import inspect

import pytest

from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.statistics import AccessStatistics
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema

#: Kernels that must accept a ``tracker`` and record intermediates and/or
#: comparisons.  ``build`` maps a kernel name to a zero-argument invocation
#: returning the kernel's result with a fresh tracker attached.
COUNTED_KERNELS = (
    "project",
    "natural_join",
    "union",
    "divide",
    "semijoin",
    "antijoin",
    "theta_semijoin",
    "product",
    "extend_product",
)


def make(name: str, fields: list[str], rows: list[tuple]) -> Relation:
    schema = RelationSchema(name, [(f, INTEGER) for f in fields])
    relation = Relation(name, schema)
    for row in rows:
        relation.insert(dict(zip(fields, row)))
    return relation


def _invoke(kernel_name: str, tracker: AccessStatistics):
    left = make("l", ["a", "b"], [(1, 10), (2, 20), (3, 10)])
    right_same = make("r", ["a", "b"], [(1, 10), (4, 40)])
    right_joinable = make("j", ["b", "c"], [(10, 7), (20, 8)])
    disjoint = make("d", ["x"], [(5,), (6,)])
    if kernel_name == "project":
        return algebra.project(left, ["b"], tracker=tracker)
    if kernel_name == "natural_join":
        return algebra.natural_join(left, right_joinable, tracker=tracker)
    if kernel_name == "union":
        return algebra.union(left, right_same, tracker=tracker)
    if kernel_name == "divide":
        divisor = make("req", ["b"], [(10,)])
        return algebra.divide(left, divisor, by=[("b", "b")], tracker=tracker)
    if kernel_name == "semijoin":
        return algebra.semijoin(left, right_joinable, on=[("b", "b")], tracker=tracker)
    if kernel_name == "antijoin":
        return algebra.antijoin(left, right_joinable, on=[("b", "b")], tracker=tracker)
    if kernel_name == "theta_semijoin":
        return algebra.theta_semijoin(
            left, right_joinable, on=[("b", "<=", "b")], tracker=tracker
        )
    if kernel_name == "product":
        return algebra.product(left, disjoint, tracker=tracker)
    if kernel_name == "extend_product":
        return algebra.extend_product(left, disjoint, tracker=tracker)
    raise AssertionError(f"no invocation recipe for kernel {kernel_name!r}")


class TestKernelCounterCoverage:
    @pytest.mark.parametrize("kernel_name", COUNTED_KERNELS)
    def test_kernel_signature_accepts_tracker(self, kernel_name):
        """Reflection: every counted kernel declares a ``tracker`` parameter."""
        kernel = getattr(algebra, kernel_name)
        signature = inspect.signature(kernel)
        assert "tracker" in signature.parameters, kernel_name
        parameter = signature.parameters["tracker"]
        assert parameter.default is None, f"{kernel_name}: tracker must default to None"

    @pytest.mark.parametrize("kernel_name", COUNTED_KERNELS)
    def test_kernel_feeds_counters(self, kernel_name):
        """Invoking the kernel with a tracker moves at least one counter."""
        tracker = AccessStatistics()
        result = _invoke(kernel_name, tracker)
        assert result is not None
        moved = tracker.comparisons + tracker.intermediate_tuples + tracker.intermediate_relations
        assert moved > 0, f"{kernel_name} recorded nothing"

    @pytest.mark.parametrize("kernel_name", COUNTED_KERNELS)
    def test_kernel_is_silent_without_tracker(self, kernel_name):
        """No tracker, no side channel: kernels never touch a global."""
        with_tracker = AccessStatistics()
        baseline = _invoke(kernel_name, None)
        counted = _invoke(kernel_name, with_tracker)
        assert baseline == counted  # tracker changes accounting, never results

    def test_divide_records_comparisons_and_intermediates(self):
        tracker = AccessStatistics()
        _invoke("divide", tracker)
        assert tracker.comparisons > 0
        assert tracker.intermediate_tuples >= 0
        assert tracker.intermediate_relations == 1

    def test_antijoin_records_intermediates(self):
        tracker = AccessStatistics()
        result = _invoke("antijoin", tracker)
        assert tracker.comparisons == 3  # one per left element
        assert tracker.intermediate_relations == 1
        assert tracker.intermediate_tuples == len(result)

    def test_extend_product_records_result_size(self):
        tracker = AccessStatistics()
        result = _invoke("extend_product", tracker)
        assert len(result) == 6  # 3 x 2
        assert tracker.intermediate_tuples == 6
        assert tracker.intermediate_relations == 1

    def test_reflective_scan_finds_no_uncounted_hot_kernel(self):
        """Every public relation-returning kernel with a hot-path role either
        takes a tracker or is explicitly exempt (pure restructuring helpers
        that the combination phase never calls on n-tuple relations)."""
        exempt = {"select", "rename", "theta_join", "join", "difference", "intersection"}
        for name in algebra.__all__:
            if name.startswith("stream_") or name == "distinct_values":
                continue
            kernel = getattr(algebra, name)
            if not callable(kernel):
                continue
            signature = inspect.signature(kernel)
            if name in exempt:
                continue
            assert "tracker" in signature.parameters, (
                f"kernel {name!r} is neither counted nor exempt"
            )
