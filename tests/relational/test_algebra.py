"""Unit tests for the relational algebra used by the combination phase."""

import pytest

from repro.errors import AlgebraError
from repro.relational.algebra import (
    antijoin,
    difference,
    distinct_values,
    divide,
    intersection,
    join,
    natural_join,
    product,
    project,
    rename,
    select,
    semijoin,
    theta_join,
    theta_semijoin,
    union,
)
from repro.relational.relation import Relation
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema


def make(name: str, fields: list[str], rows: list[tuple]) -> Relation:
    schema = RelationSchema(name, [(f, INTEGER) for f in fields])
    relation = Relation(name, schema)
    for row in rows:
        relation.insert(dict(zip(fields, row)))
    return relation


@pytest.fixture
def enrolment():
    """A little student/course enrolment universe for division tests."""
    takes = make("takes", ["student", "course"], [
        (1, 10), (1, 20), (1, 30),
        (2, 10), (2, 20),
        (3, 30),
    ])
    courses = make("required", ["course"], [(10,), (20,)])
    return takes, courses


class TestBasicOperators:
    def test_select(self):
        r = make("r", ["a", "b"], [(1, 2), (3, 4)])
        assert len(select(r, lambda rec: rec.a > 1)) == 1

    def test_project_eliminates_duplicates(self):
        r = make("r", ["a", "b"], [(1, 2), (1, 3)])
        assert len(project(r, ["a"])) == 1

    def test_project_keeps_requested_order(self):
        r = make("r", ["a", "b"], [(1, 2)])
        assert project(r, ["b", "a"]).schema.field_names == ("b", "a")

    def test_rename(self):
        r = make("r", ["a"], [(1,)])
        renamed = rename(r, {"a": "x"})
        assert renamed.schema.field_names == ("x",)
        assert renamed.elements()[0].x == 1

    def test_product_cardinality(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("s", ["b"], [(3,), (4,), (5,)])
        assert len(product(r, s)) == 6

    def test_product_name_clash_raises(self):
        from repro.errors import PascalRError

        r = make("r", ["a"], [(1,)])
        with pytest.raises(PascalRError):
            product(r, r)

    def test_theta_join(self):
        r = make("r", ["a"], [(1,), (2,), (3,)])
        s = make("s", ["b"], [(2,), (3,)])
        result = theta_join(r, s, lambda x, y: x.a < y.b)
        assert len(result) == 3  # (1,2) (1,3) (2,3)

    def test_equi_join(self):
        r = make("r", ["a", "x"], [(1, 100), (2, 200)])
        s = make("s", ["b", "y"], [(1, 10), (1, 11), (3, 30)])
        result = join(r, s, on=[("a", "b")])
        assert len(result) == 2

    def test_join_with_no_pairs_is_product(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("s", ["b"], [(1,)])
        assert len(join(r, s, on=[])) == 2

    def test_natural_join_shares_common_columns(self):
        r = make("r", ["a", "b"], [(1, 2), (2, 3)])
        s = make("s", ["b", "c"], [(2, 9), (3, 8), (7, 1)])
        result = natural_join(r, s)
        assert result.schema.field_names == ("a", "b", "c")
        assert len(result) == 2

    def test_natural_join_without_common_columns_is_product(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("s", ["b"], [(5,)])
        assert len(natural_join(r, s)) == 2


class TestSetOperators:
    def test_union(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("r2", ["a"], [(2,), (3,)])
        assert len(union(r, s)) == 3

    def test_difference(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("r2", ["a"], [(2,)])
        assert [rec.a for rec in difference(r, s)] == [1]

    def test_intersection(self):
        r = make("r", ["a"], [(1,), (2,)])
        s = make("r2", ["a"], [(2,), (3,)])
        assert [rec.a for rec in intersection(r, s)] == [2]

    def test_union_schema_mismatch_raises(self):
        r = make("r", ["a"], [(1,)])
        s = make("s", ["b"], [(1,)])
        with pytest.raises(AlgebraError):
            union(r, s)

    def test_set_operators_do_not_mutate_operands(self):
        r = make("r", ["a"], [(1,)])
        s = make("r2", ["a"], [(2,)])
        union(r, s)
        difference(r, s)
        intersection(r, s)
        assert len(r) == 1 and len(s) == 1


class TestDivision:
    def test_divide_students_taking_all_required_courses(self, enrolment):
        takes, required = enrolment
        result = divide(takes, required, by=[("course", "course")])
        assert {rec.student for rec in result} == {1, 2}

    def test_divide_by_empty_divisor_returns_all_groups(self, enrolment):
        takes, _ = enrolment
        empty = make("required", ["course"], [])
        result = divide(takes, empty, by=[("course", "course")])
        assert {rec.student for rec in result} == {1, 2, 3}

    def test_divide_empty_dividend(self, enrolment):
        _, required = enrolment
        empty = make("takes", ["student", "course"], [])
        assert len(divide(empty, required, by=[("course", "course")])) == 0

    def test_divide_unknown_columns_raise(self, enrolment):
        takes, required = enrolment
        with pytest.raises(AlgebraError):
            divide(takes, required, by=[("nope", "course")])
        with pytest.raises(AlgebraError):
            divide(takes, required, by=[("course", "nope")])

    def test_divide_eliminating_all_columns_raises(self, enrolment):
        _, required = enrolment
        one_column = make("takes", ["course"], [(10,), (20,)])
        with pytest.raises(AlgebraError):
            divide(one_column, required, by=[("course", "course")])

    def test_division_matches_quantifier_semantics(self, enrolment):
        """x qualifies iff for every divisor row the pair is in the dividend."""
        takes, required = enrolment
        result = divide(takes, required, by=[("course", "course")])
        students = {rec.student for rec in takes}
        required_courses = {rec.course for rec in required}
        expected = {
            s
            for s in students
            if all((s, c) in {(r.student, r.course) for r in takes} for c in required_courses)
        }
        assert {rec.student for rec in result} == expected


class TestSemiAndAntiJoin:
    def test_semijoin(self):
        r = make("r", ["a"], [(1,), (2,), (3,)])
        s = make("s", ["b"], [(2,), (3,), (4,)])
        assert {rec.a for rec in semijoin(r, s, on=[("a", "b")])} == {2, 3}

    def test_antijoin(self):
        r = make("r", ["a"], [(1,), (2,), (3,)])
        s = make("s", ["b"], [(2,), (3,), (4,)])
        assert {rec.a for rec in antijoin(r, s, on=[("a", "b")])} == {1}

    def test_semijoin_and_antijoin_partition_left(self):
        r = make("r", ["a"], [(i,) for i in range(10)])
        s = make("s", ["b"], [(i,) for i in range(0, 10, 3)])
        semi = semijoin(r, s, on=[("a", "b")])
        anti = antijoin(r, s, on=[("a", "b")])
        assert len(semi) + len(anti) == len(r)
        assert len(intersection(semi, anti)) == 0

    def test_theta_semijoin(self):
        r = make("r", ["a"], [(1,), (5,), (9,)])
        s = make("s", ["b"], [(4,), (6,)])
        result = theta_semijoin(r, s, on=[("a", "<", "b")])
        assert {rec.a for rec in result} == {1, 5}

    def test_distinct_values(self):
        r = make("r", ["a", "b"], [(1, 5), (2, 5), (3, 6)])
        assert distinct_values(r, "b") == {5, 6}
