"""Property test: incremental permanent-index maintenance is exact.

Permanent indexes are no longer rebuilt by ``refresh_indexes`` sweeps — every
insert/delete/assign/clear maintains them in place.  This suite drives random
interleavings of those operators (hypothesis-generated) against an indexed
relation on both storage backends and asserts, after every single step, that
probing the maintained index yields byte-identical references to a fresh
full-scan rebuild — for every operator and probe value.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.index import HashIndex, SortedIndex, build_index
from repro.types.scalar import INTEGER, Subrange

_SMALL = Subrange(0, 9, "small")

#: One random mutation: (op, key, value).  Keys collide often (0..7) so
#: deletes hit, inserts no-op on duplicates, and assigns overwrite.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(("insert", "delete", "assign", "clear")),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=30,
)

_PROBE_OPERATORS = ("=", "<", "<=", ">", ">=", "<>")


def _make_database(paged: bool) -> Database:
    database = Database("maintenance", paged=paged)
    database.create_relation(
        "r", [("k", INTEGER), ("v", _SMALL)], key=["k"], page_capacity=4
    )
    database.create_index("r", "v")                 # HashIndex on the value
    database.create_index("r", "k", operator="<=")  # SortedIndex on the key
    return database


def _apply(relation, op: str, key: int, value: int, state: dict[int, int]) -> None:
    if op == "insert":
        if state.get(key, value) != value:
            return  # would be a key violation; not what this test is about
        relation.insert({"k": key, "v": value})
        state[key] = value
    elif op == "delete":
        relation.delete_key(key)
        state.pop(key, None)
    elif op == "assign":
        # Replace the whole contents with a rotation of the current state
        # plus the drawn element — exercises clear-and-reinsert maintenance.
        state.pop(key, None)
        state[key] = value
        relation.assign([{"k": k, "v": v} for k, v in sorted(state.items())])
    else:  # clear
        relation.clear()
        state.clear()


def _assert_index_exact(database: Database, relation) -> None:
    """Every maintained index answers every probe like a fresh rebuild."""
    for (relation_name, field_name) in database.indexes():
        maintained = database.index_for(relation_name, field_name)
        fresh = build_index(
            relation,
            field_name,
            operator="=" if isinstance(maintained, HashIndex) else "<=",
        )
        assert len(maintained) == len(fresh), field_name
        assert sorted(
            (v, ref.key) for v, ref in _entries(maintained)
        ) == sorted((v, ref.key) for v, ref in _entries(fresh)), field_name
        for op in _PROBE_OPERATORS:
            if isinstance(maintained, HashIndex) and op not in ("=", "<>"):
                continue
            for probe_value in range(-1, 11):
                got = sorted(ref.key for ref in maintained.probe_operator(op, probe_value))
                want = sorted(ref.key for ref in fresh.probe_operator(op, probe_value))
                assert got == want, (field_name, op, probe_value)


def _entries(index):
    if isinstance(index, HashIndex):
        return list(index.entries())
    return [(value, ref) for value, ref in index._pairs]


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_random_interleavings_keep_indexes_exact(paged: bool, ops) -> None:
    database = _make_database(paged)
    relation = database.relation("r")
    state: dict[int, int] = {}
    for op, key, value in ops:
        _apply(relation, op, key, value, state)
        assert {record["k"]: record["v"] for record in relation.elements()} == state
        _assert_index_exact(database, relation)
    assert database.statistics.index_maintenance_ops >= 0


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
def test_maintenance_is_counted(paged: bool) -> None:
    database = _make_database(paged)
    relation = database.relation("r")
    before = database.statistics.index_maintenance_ops
    relation.insert({"k": 1, "v": 5})
    after_insert = database.statistics.index_maintenance_ops
    assert after_insert == before + 2  # two maintained indexes
    relation.delete_key(1)
    assert database.statistics.index_maintenance_ops == after_insert + 2


@pytest.mark.parametrize("paged", (False, True), ids=("memory", "paged"))
def test_raw_inserts_maintain_indexes_too(paged: bool) -> None:
    """The algebra fast path normally targets unindexed result relations,
    but a raw insert into an indexed base relation must still maintain it —
    including the key-overwrite case."""
    from repro.relational.record import Record

    database = _make_database(paged)
    relation = database.relation("r")
    relation.insert_raw(Record(relation.schema, {"k": 1, "v": 5}))
    hash_index = database.index_for("r", "v")
    assert [ref.key for ref in hash_index.probe(5)] == [(1,)]
    relation.insert_raw(Record(relation.schema, {"k": 1, "v": 7}))  # overwrite
    assert hash_index.probe(5) == []
    assert [ref.key for ref in hash_index.probe(7)] == [(1,)]
    relation.bulk_insert_raw([Record(relation.schema, {"k": 2, "v": 7})])
    assert len(hash_index.probe(7)) == 2
    _assert_index_exact(database, relation)
