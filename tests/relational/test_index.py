"""Unit tests for indexes and value lists (Figure 2 structures, Strategy 4)."""

import pytest

from repro.errors import RelationError
from repro.relational.index import HashIndex, SortedIndex, ValueList, build_index
from repro.relational.relation import Relation
from repro.relational.statistics import AccessStatistics
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema


@pytest.fixture
def timetable() -> Relation:
    schema = RelationSchema("timetable", [("tenr", INTEGER), ("tcnr", INTEGER)], key=["tenr", "tcnr"])
    relation = Relation("timetable", schema, tracker=AccessStatistics())
    for tenr, tcnr in [(1, 10), (1, 20), (2, 10), (3, 30), (4, 20)]:
        relation.insert({"tenr": tenr, "tcnr": tcnr})
    return relation


class TestHashIndex:
    def test_build_scans_once(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        assert timetable.tracker.scans("timetable") == 1
        assert len(index) == 5

    def test_probe_equality(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        refs = index.probe(10)
        assert {ref.deref().tenr for ref in refs} == {1, 2}

    def test_probe_missing_value(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        assert index.probe(99) == []

    def test_probe_not_equal(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        refs = index.probe_not_equal(10)
        assert len(refs) == 3

    def test_probe_operator_range(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        assert len(index.probe_operator(">=", 20)) == 3

    def test_probe_records_statistics(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        index.probe(10)
        stats = timetable.tracker.as_dict()["relations"]["timetable"]
        assert stats["index_probes"] == 1
        assert stats["index_entries_read"] == 2

    def test_distinct_values(self, timetable):
        index = HashIndex(timetable, "tcnr").build()
        assert index.distinct_values() == 3
        assert set(index.values()) == {10, 20, 30}

    def test_remove(self, timetable):
        index = HashIndex(timetable, "tenr").build()
        index.remove(timetable[(1, 10)])
        assert len(index.probe(1)) == 1

    def test_unknown_field_raises(self, timetable):
        with pytest.raises(RelationError):
            HashIndex(timetable, "troom")

    def test_as_relation_matches_figure2_shape(self, timetable):
        index = HashIndex(timetable, "tcnr", name="ind_t_cnr").build()
        materialized = index.as_relation()
        assert materialized.schema.field_names == ("tcnr", "timetable_ref")
        assert len(materialized) == 5


class TestSortedIndex:
    def test_range_probes(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        assert len(index.probe_operator("<", 20)) == 2
        assert len(index.probe_operator("<=", 20)) == 4
        assert len(index.probe_operator(">", 20)) == 1
        assert len(index.probe_operator(">=", 30)) == 1

    def test_equality_probes(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        assert len(index.probe_operator("=", 20)) == 2
        assert len(index.probe_operator("<>", 20)) == 3

    def test_min_max(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        assert index.minimum() == 10
        assert index.maximum() == 30

    def test_empty_min_max(self):
        schema = RelationSchema("empty", [("x", INTEGER)])
        index = SortedIndex(Relation("empty", schema), "x").build()
        assert index.minimum() is None
        assert index.maximum() is None

    def test_add_ref_keeps_order(self, timetable):
        index = SortedIndex(timetable, "tcnr")
        for record in timetable:
            index.add_ref(record.tcnr, timetable.ref_of(record))
        assert index.minimum() == 10

    def test_unknown_operator_raises(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        with pytest.raises(RelationError):
            index.probe_operator("!=", 10)

    def test_incremental_add_after_build_keeps_sorted(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        extra = timetable.insert({"tenr": 9, "tcnr": 15})
        index.add(extra)
        assert [v for v, _ in index._pairs] == sorted(v for v, _ in index._pairs)
        assert len(index.probe_operator("<=", 15)) == 3

    def test_remove_on_sorted_and_unsorted_lists(self, timetable):
        records = list(timetable)
        index = SortedIndex(timetable, "tcnr")
        for record in records:
            index.add(record)  # bulk load: unsorted until first probe
        index.remove(records[0])
        assert len(index) == len(records) - 1
        index.probe_operator("<=", 99)  # forces the sort
        index.remove(records[1])
        assert len(index) == len(records) - 2
        index.remove(records[1])  # absent: no-op
        assert len(index) == len(records) - 2

    def test_clear(self, timetable):
        index = SortedIndex(timetable, "tcnr").build()
        index.clear()
        assert len(index) == 0
        assert index.probe_operator("<=", 99) == []


class TestBuildIndex:
    def test_equality_gets_hash_index(self, timetable):
        assert isinstance(build_index(timetable, "tcnr", "="), HashIndex)

    def test_ordering_gets_sorted_index(self, timetable):
        assert isinstance(build_index(timetable, "tcnr", "<="), SortedIndex)


class TestValueList:
    def test_some_equality_is_membership(self):
        values = ValueList([3, 5, 7])
        assert values.satisfies_some("=", 5)
        assert not values.satisfies_some("=", 4)

    def test_some_less_than_uses_maximum(self):
        values = ValueList([3, 5, 7])
        assert values.satisfies_some("<", 6)       # 6 < max(7)
        assert not values.satisfies_some("<", 7)   # nothing above 7

    def test_all_less_than_uses_minimum(self):
        values = ValueList([3, 5, 7])
        assert values.satisfies_all("<", 2)
        assert not values.satisfies_all("<", 3)

    def test_some_not_equal_single_value_shortcut(self):
        assert not ValueList([4]).satisfies_some("<>", 4)
        assert ValueList([4]).satisfies_some("<>", 5)
        # with two distinct values the answer is always true
        assert ValueList([4, 6]).satisfies_some("<>", 4)

    def test_all_equal_single_value_shortcut(self):
        assert ValueList([4]).satisfies_all("=", 4)
        assert not ValueList([4]).satisfies_all("=", 5)
        assert not ValueList([4, 6]).satisfies_all("=", 4)

    def test_all_not_equal(self):
        values = ValueList([3, 5])
        assert values.satisfies_all("<>", 4)
        assert not values.satisfies_all("<>", 5)

    def test_empty_value_list_semantics(self):
        empty = ValueList()
        assert empty.is_empty()
        assert not empty.satisfies_some("=", 1)
        assert empty.satisfies_all("=", 1)

    def test_min_max_and_single_value(self):
        values = ValueList([3, 5, 7])
        assert values.minimum() == 3
        assert values.maximum() == 7
        assert values.single_value() is None
        assert ValueList([9]).single_value() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(RelationError):
            ValueList().minimum()

    def test_distinct_count_and_contains(self):
        values = ValueList([1, 1, 2])
        assert values.distinct_count() == 2
        assert 2 in values
        assert len(values) == 2

    def test_matches_brute_force_quantification(self):
        # The value-list shortcuts must agree with direct quantification.
        inner = [2, 4, 6, 9]
        values = ValueList(inner)
        from repro.types.scalar import compare_values

        for op in ("=", "<>", "<", "<=", ">", ">="):
            for outer in range(0, 11):
                assert values.satisfies_some(op, outer) == any(
                    compare_values(op, outer, v) for v in inner
                ), (op, outer)
                assert values.satisfies_all(op, outer) == all(
                    compare_values(op, outer, v) for v in inner
                ), (op, outer)
