"""Benchmark regression pins: PR 1's combination-optimizer wins stay won.

The combination-phase optimizer (cost-ordered joins + semijoin
pre-reduction) cut the peak intermediate n-tuple count on the scale-4
inequality-join workload from 372 to 117.  These tests lock those numbers in
as hard bounds so later refactors — including the service layer's plan
reuse, which runs the same combination phase from cached collection
structures — cannot silently regress them.
"""

from __future__ import annotations

import pytest

from repro import StrategyOptions, build_university_database, connect, execute_naive
from repro.engine.evaluator import QueryEngine
from repro.workloads.queries import OTHERS_PUBLISHED_1977_TEXT, PUBLISHING_TEACHERS_TEXT

#: The benchmark's configuration: Strategy 1 only, so the dyadic structures
#: actually reach the combination phase (S3/S4 would dissolve them first).
LEGACY = StrategyOptions.only(parallel_collection=True)
OPTIMIZED = LEGACY.with_(join_ordering=True, semijoin_reduction=True)

#: The pinned values (scale 4, ``others_published_1977``).  The peak bound is
#: the number PR 1's benchmark reports; the legacy floor documents the gap.
PEAK_BOUND = 117
LEGACY_PEAK_FLOOR = 372

#: The sharded-join benchmark's configuration (S4 off keeps the dyadic
#: structures) and its pinned acceptance numbers (scale 8,
#: ``publishing_teachers``, 4 hash shards): modeled critical-path speedup
#: and the reducer's shipped-bytes fraction of the naive full-relation
#: broadcast baseline.
SHARDED = StrategyOptions.all_strategies().with_(
    collection_phase_quantifiers=False,
    streaming_execution=False,
    sharded_execution=True,
    shard_min_rows=0,
    shard_count=4,
    shard_backend="serial",
)
SHARDED_SPEEDUP_BOUND = 2.5
SHARDED_SHIPPED_FRACTION_BOUND = 0.25


@pytest.fixture(scope="module")
def scale4():
    return build_university_database(scale=4)


def test_optimizer_peak_tuples_bound(scale4):
    """Peak intermediate n-tuples stay at or below the PR 1 result."""
    result = QueryEngine(scale4, OPTIMIZED).run(OTHERS_PUBLISHED_1977_TEXT)
    assert result.combination is not None
    assert result.combination.peak_tuples <= PEAK_BOUND, result.combination.peak_tuples


def test_semijoin_reduction_actually_reduces(scale4):
    """``reduced_tuples`` is positive whenever the reducer flag is on."""
    result = QueryEngine(scale4, OPTIMIZED).run(OTHERS_PUBLISHED_1977_TEXT)
    assert result.statistics["reduced_tuples"] > 0
    assert result.statistics["reductions"] > 0


def test_reduction_is_off_when_disabled(scale4):
    result = QueryEngine(scale4, LEGACY).run(OTHERS_PUBLISHED_1977_TEXT)
    assert result.statistics["reduced_tuples"] == 0


def test_legacy_gap_is_still_visible(scale4):
    """The legacy configuration still peaks where PR 1 measured it — if this
    shrinks, the benchmark's comparison story needs updating."""
    result = QueryEngine(scale4, LEGACY).run(OTHERS_PUBLISHED_1977_TEXT)
    assert result.combination.peak_tuples >= PEAK_BOUND
    assert result.combination.peak_tuples <= LEGACY_PEAK_FLOOR


def test_optimizer_still_matches_naive(scale4):
    expected = execute_naive(scale4, OTHERS_PUBLISHED_1977_TEXT)
    assert QueryEngine(scale4, OPTIMIZED).run(OTHERS_PUBLISHED_1977_TEXT).relation == expected


def test_prepared_execution_keeps_the_peak_bound(scale4):
    """Plan reuse must not change what the combination phase builds."""
    service = connect(scale4, options=OPTIMIZED).service
    prepared = service.prepare(OTHERS_PUBLISHED_1977_TEXT)
    first = prepared.execute()
    second = prepared.execute()  # runs from the cached collection structures
    assert first.combination.peak_tuples <= PEAK_BOUND
    assert second.combination.peak_tuples <= PEAK_BOUND
    assert second.relation == first.relation


# ----------------------------------------------------- PR 8: sharded execution


@pytest.fixture(scope="module")
def scale8():
    return build_university_database(scale=8)


def test_sharded_modeled_speedup_stays_won(scale8):
    """The sharded-join benchmark's 2.5x critical-path speedup is a floor."""
    result = QueryEngine(scale8, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
    report = result.combination.shard_report
    assert report is not None
    speedup = report.total_work / max(report.max_shard_work, 1)
    assert speedup >= SHARDED_SPEEDUP_BOUND, speedup


def test_sharded_reducer_ships_at_most_a_quarter_of_naive(scale8):
    """Projections, not relations: the shipped-bytes bound is a ceiling."""
    result = QueryEngine(scale8, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
    report = result.combination.shard_report
    assert report.reducer_rounds > 0
    assert 0 < report.shipped_bytes <= (
        SHARDED_SHIPPED_FRACTION_BOUND * report.naive_ship_bytes
    ), (report.shipped_bytes, report.naive_ship_bytes)


def test_sharded_execution_still_matches_single_shard(scale8):
    # (The naive ground truth is asserted across the whole matrix at smaller
    # scales in tests/engine/test_equivalence.py; at scale 8 direct
    # interpretation enumerates ~24M range combinations.)
    expected = QueryEngine(scale8, SHARDED.with_(sharded_execution=False)).run(
        PUBLISHING_TEACHERS_TEXT
    )
    result = QueryEngine(scale8, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
    assert sorted(r.values for r in result.relation) == sorted(
        r.values for r in expected.relation
    )


# ------------------------------------------------ PR 9: statistics-driven cost model


#: The cost-model benchmark's pinned acceptance numbers (``bench_cost_model``,
#: hot-group size 50): the uniform estimator's join order materializes at
#: least 5x the peak intermediates of the histogram-driven order, and after
#: the Zipf head drifts under a pinned plan, one detected q-error past the
#: threshold recompiles in place and recovers at least 5x again.
COST_MODEL_PEAK_RATIO = 5.0
COST_MODEL_REOPT_RATIO = 5.0


def test_histogram_join_order_keeps_the_5x_peak_win():
    from benchmarks.bench_cost_model import FULL_HOT, _measure

    row = _measure(FULL_HOT)
    assert row["join_uniform"] != row["join_histogram"], row
    assert row["ratio"] >= COST_MODEL_PEAK_RATIO, row


def test_adaptive_reoptimization_stays_won():
    from benchmarks.bench_cost_model import _measure_reopt

    row = _measure_reopt()
    assert row["reoptimizations"] == 1, row
    assert row["ratio"] >= COST_MODEL_REOPT_RATIO, row


# ------------------------------------------------ PR 10: bibliographic workload


#: The bibliography benchmark's pinned acceptance numbers
#: (``bench_bibliography``, full scale): the uniform estimator walks into the
#: era-head explosion and materializes at least 3x the histogram order's peak
#: (monotone from scale 1, asserted in the benchmark itself), and the sharded
#: partitioner switches hash placement to frequency-weighted range bounds on
#: the power-law venue head.
BIBLIO_PEAK_RATIO = 3.0
BIBLIO_RANGE_LOAD_FRACTION = 0.80


def test_bibliography_histogram_order_keeps_the_3x_peak_win():
    from benchmarks.bench_bibliography import FULL_SCALE, _measure_order

    row = _measure_order(FULL_SCALE)
    assert row["join_uniform"] != row["join_histogram"], row
    assert row["ratio"] >= BIBLIO_PEAK_RATIO, row


def test_bibliography_partition_auto_pick_stays_won():
    from benchmarks.bench_bibliography import FULL_SCALE, _measure_partition

    row = _measure_partition(FULL_SCALE)
    assert row["spec_uniform"].startswith("hash("), row
    assert row["spec_histogram"].startswith("range("), row
    assert row["load_fraction"] <= BIBLIO_RANGE_LOAD_FRACTION, row
