"""Unit tests for the benchmark measurement harness."""

import pytest

from repro import StrategyOptions
from repro.bench.harness import compare_strategies, format_table, measure, measure_naive
from repro.bench.report import CONFIGURATIONS, SCALES
from repro.workloads.queries import EXAMPLE_21_TEXT, PROFESSORS_TEXT


class TestMeasure:
    def test_measure_profiles_the_execution(self, figure1):
        measurement = measure(figure1, EXAMPLE_21_TEXT, StrategyOptions.all_strategies())
        assert measurement.result_size >= 0
        assert measurement.total_scans == 4
        assert measurement.elements_read > 0
        assert measurement.division_steps == 0
        assert measurement.elapsed_seconds > 0

    def test_measure_unoptimised_counts_divisions(self, figure1):
        measurement = measure(figure1, EXAMPLE_21_TEXT, StrategyOptions.none(), label="unopt")
        assert measurement.label == "unopt"
        assert measurement.division_steps == 1
        assert measurement.peak_combination_tuples > 0

    def test_measure_naive(self, figure1):
        measurement = measure_naive(figure1, PROFESSORS_TEXT)
        assert measurement.label == "naive interpretation"
        assert measurement.intermediate_tuples == 0
        assert measurement.scans["employees"] >= 1

    def test_row_contains_reporting_columns(self, figure1):
        measurement = measure(figure1, PROFESSORS_TEXT, StrategyOptions.all_strategies())
        row = measurement.row()
        assert {"configuration", "result", "scans", "intermediate", "time (ms)"} <= set(row)


class TestCompareAndFormat:
    def test_compare_strategies_produces_one_row_per_configuration(self, figure1):
        measurements = compare_strategies(
            figure1,
            PROFESSORS_TEXT,
            {"a": StrategyOptions.none(), "b": StrategyOptions.all_strategies()},
            include_naive=True,
        )
        assert [m.label for m in measurements] == ["naive interpretation", "a", "b"]
        # All configurations agree on the result size.
        assert len({m.result_size for m in measurements}) == 1

    def test_format_table_aligns_columns(self, figure1):
        measurements = compare_strategies(
            figure1, PROFESSORS_TEXT, {"only": StrategyOptions.all_strategies()}
        )
        table = format_table(measurements, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "configuration" in lines[1]
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_predefined_configuration_table(self):
        assert "S1-S4 full optimizer" in CONFIGURATIONS
        assert len(SCALES) >= 2
