"""Cross-engine, cross-backend equivalence: every optimized path vs. ground truth.

Four axes are crossed here:

* **optimizer flags** — ``join_ordering`` × ``semijoin_reduction``;
* **execution mode** — ``streaming_execution`` on (the pull-based operator
  pipeline) vs. off (materialise every intermediate n-tuple relation),
  asserted byte-identical in :class:`TestStreamingEquivalence`;
* **strategy configurations** — the representative configurations of
  ``conftest`` (scale 1) and a reduced set (scale 2);
* **storage backend** — the plain in-memory :class:`Relation` dictionary and
  the paged :class:`StoredRelation` (heap file + buffer pool), which before
  this matrix was only exercised by the isolated unit tests in
  ``tests/storage/``.

For every cell, the phase-structured engine must return exactly the relation
computed by :func:`repro.engine.evaluator.execute_naive`, the two backends
must agree with each other, and the page counters must be coherent: a paged
database reads pages (with ``page_hits + page_misses == pages_read``), an
in-memory database never does.  A final block extends the matrix to the
service layer: prepared parameterized execution must be byte-identical to
cold execution for every workload query, parameter binding and backend.
"""

from __future__ import annotations

import itertools

import pytest

from repro import QueryEngine, StrategyOptions, connect, execute_naive
from repro.workloads.queries import (
    all_named_queries,
    inline_parameters,
    parameterized_queries,
)
from repro.workloads.university import build_university_database, figure1_database

SCALE2_CONFIGS = {
    "all": StrategyOptions.all_strategies(),
    "none": StrategyOptions.none(),
    "s1": StrategyOptions.only(parallel_collection=True),
    "s1+s2": StrategyOptions.only(parallel_collection=True, one_step_nested=True),
    "s3+s4": StrategyOptions.only(
        extended_ranges=True, collection_phase_quantifiers=True
    ),
}

QUERIES = all_named_queries()

OPTIMIZER_FLAGS = list(itertools.product((False, True), repeat=2))

BACKENDS = ("memory", "paged")


def _flag_id(flags: tuple[bool, bool]) -> str:
    ordering, reduction = flags
    return f"ordering={'on' if ordering else 'off'}-semijoin={'on' if reduction else 'off'}"


@pytest.fixture(params=BACKENDS, scope="module")
def backend(request) -> str:
    return request.param


@pytest.fixture(scope="module")
def figure1_backend(backend):
    """The Figure 1 database on the requested storage backend.

    Module-scoped: the tests below only read (every execution resets the
    shared statistics itself).
    """
    return figure1_database(paged=(backend == "paged"))


@pytest.fixture(scope="module")
def scale2_backend(backend):
    return build_university_database(scale=2, paged=(backend == "paged"))


def _assert_page_counters_sane(database, backend: str) -> None:
    snapshot = database.statistics.as_dict()
    if backend == "paged":
        total_scans = sum(c["scans"] for c in snapshot["relations"].values())
        if total_scans > 0:
            assert snapshot["pages_read"] > 0, snapshot
        assert snapshot["page_hits"] + snapshot["page_misses"] == snapshot["pages_read"]
        assert snapshot["page_hits"] >= 0 and snapshot["page_misses"] >= 0
    else:
        assert snapshot["pages_read"] == 0, snapshot
        assert snapshot["page_hits"] == 0 and snapshot["page_misses"] == 0


@pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_optimizer_flags_match_naive_on_figure1(
    figure1_backend, backend, query_name, flags, strategy_options
):
    """All optimizer flags × strategy configs × backends, on the Figure 1 data."""
    ordering, reduction = flags
    options = strategy_options.with_(join_ordering=ordering, semijoin_reduction=reduction)
    expected = execute_naive(figure1_backend, QUERIES[query_name])
    result = QueryEngine(figure1_backend, options).run(QUERIES[query_name])
    assert result.relation == expected
    _assert_page_counters_sane(figure1_backend, backend)


@pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
@pytest.mark.parametrize("config_name", sorted(SCALE2_CONFIGS))
def test_optimizer_flags_match_naive_at_scale2(scale2_backend, backend, config_name, flags):
    """A larger database catches size-dependent ordering bugs; one query per cell."""
    ordering, reduction = flags
    options = SCALE2_CONFIGS[config_name].with_(
        join_ordering=ordering, semijoin_reduction=reduction
    )
    for query_name in ("others_published_1977", "publishing_teachers", "example_2_1"):
        expected = execute_naive(scale2_backend, QUERIES[query_name])
        result = QueryEngine(scale2_backend, options).run(QUERIES[query_name])
        assert result.relation == expected, (config_name, query_name)
    _assert_page_counters_sane(scale2_backend, backend)


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_backends_agree_elementwise(query_name):
    """The two backends return identical element sets for every named query."""
    memory = figure1_database(paged=False)
    paged = figure1_database(paged=True)
    memory_result = QueryEngine(memory).run(QUERIES[query_name])
    paged_result = QueryEngine(paged).run(QUERIES[query_name])
    assert sorted(r.values for r in memory_result.relation) == sorted(
        r.values for r in paged_result.relation
    )


INDEX_SPECS = (
    ("employees", "enr", "="),
    ("papers", "penr", "="),
    ("papers", "pyear", "<="),
    ("courses", "clevel", "<="),
    ("courses", "cnr", "="),
    ("timetable", "tenr", "="),
)


@pytest.fixture(scope="module")
def indexed_backend(backend):
    """The Figure 1 database with permanent indexes on every probe-able
    component, so the access-path selector actually has paths to choose."""
    database = figure1_database(paged=(backend == "paged"))
    for relation_name, field_name, operator in INDEX_SPECS:
        database.create_index(relation_name, field_name, operator=operator)
    return database


class TestIndexAccessPathEquivalence:
    """``use_index_paths`` on/off × queries × backends, on indexed data."""

    @pytest.mark.parametrize(
        "index_paths", (False, True), ids=("indexpaths=off", "indexpaths=on")
    )
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_matches_naive_with_permanent_indexes(
        self, indexed_backend, backend, query_name, index_paths
    ):
        options = StrategyOptions().with_(use_index_paths=index_paths)
        expected = execute_naive(indexed_backend, QUERIES[query_name])
        result = QueryEngine(indexed_backend, options).run(QUERIES[query_name])
        assert result.relation == expected, query_name
        _assert_page_counters_sane(indexed_backend, backend)

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_on_off_byte_identical(self, indexed_backend, query_name):
        on = QueryEngine(
            indexed_backend, StrategyOptions().with_(use_index_paths=True)
        ).run(QUERIES[query_name])
        off = QueryEngine(
            indexed_backend, StrategyOptions().with_(use_index_paths=False)
        ).run(QUERIES[query_name])
        assert sorted(r.values for r in on.relation) == sorted(
            r.values for r in off.relation
        )

    @pytest.mark.parametrize("config_name", sorted(SCALE2_CONFIGS))
    def test_strategy_configs_with_index_paths_at_scale2(self, config_name):
        database = build_university_database(scale=2, paged=True)
        for relation_name, field_name, operator in INDEX_SPECS:
            database.create_index(relation_name, field_name, operator=operator)
        options = SCALE2_CONFIGS[config_name].with_(use_index_paths=True)
        for query_name in ("others_published_1977", "publishing_teachers", "example_2_1"):
            expected = execute_naive(database, QUERIES[query_name])
            result = QueryEngine(database, options).run(QUERIES[query_name])
            assert result.relation == expected, (config_name, query_name)

    @pytest.mark.parametrize("workload_name", sorted(parameterized_queries()))
    def test_prepared_on_off_byte_identical(self, indexed_backend, workload_name):
        text, bindings = parameterized_queries()[workload_name]
        service = connect(indexed_backend).service
        prepared_on = service.prepare(text)
        prepared_off = service.prepare(
            text, StrategyOptions().with_(use_index_paths=False)
        )
        for values in bindings:
            for _ in range(2):  # the second run exercises the collection memo
                on = prepared_on.execute(values).relation
                off = prepared_off.execute(values).relation
                assert sorted(r.values for r in on) == sorted(
                    r.values for r in off
                ), (workload_name, values)


class TestStreamingEquivalence:
    """``streaming_execution`` on/off × the full existing matrix.

    Streamed execution must be byte-identical to materialised execution (and
    to the naive ground truth) across every strategy configuration, optimizer
    flag combination, storage backend and access-path choice the suite
    already crosses.
    """

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_streaming_on_off_byte_identical_on_figure1(
        self, figure1_backend, backend, query_name, strategy_options
    ):
        expected = execute_naive(figure1_backend, QUERIES[query_name])
        on = QueryEngine(
            figure1_backend, strategy_options.with_(streaming_execution=True)
        ).run(QUERIES[query_name])
        off = QueryEngine(
            figure1_backend, strategy_options.with_(streaming_execution=False)
        ).run(QUERIES[query_name])
        assert on.relation == expected
        assert off.relation == expected
        assert sorted(r.values for r in on.relation) == sorted(
            r.values for r in off.relation
        )
        _assert_page_counters_sane(figure1_backend, backend)

    @pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
    @pytest.mark.parametrize("config_name", sorted(SCALE2_CONFIGS))
    def test_streaming_on_off_byte_identical_at_scale2(
        self, scale2_backend, backend, config_name, flags
    ):
        ordering, reduction = flags
        base = SCALE2_CONFIGS[config_name].with_(
            join_ordering=ordering, semijoin_reduction=reduction
        )
        for query_name in ("others_published_1977", "publishing_teachers", "example_2_1"):
            on = QueryEngine(
                scale2_backend, base.with_(streaming_execution=True)
            ).run(QUERIES[query_name])
            off = QueryEngine(
                scale2_backend, base.with_(streaming_execution=False)
            ).run(QUERIES[query_name])
            assert sorted(r.values for r in on.relation) == sorted(
                r.values for r in off.relation
            ), (config_name, query_name)
        _assert_page_counters_sane(scale2_backend, backend)

    @pytest.mark.parametrize(
        "index_paths", (False, True), ids=("indexpaths=off", "indexpaths=on")
    )
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_streaming_crossed_with_index_paths(
        self, indexed_backend, backend, query_name, index_paths
    ):
        expected = execute_naive(indexed_backend, QUERIES[query_name])
        base = StrategyOptions().with_(use_index_paths=index_paths)
        on = QueryEngine(
            indexed_backend, base.with_(streaming_execution=True)
        ).run(QUERIES[query_name])
        off = QueryEngine(
            indexed_backend, base.with_(streaming_execution=False)
        ).run(QUERIES[query_name])
        assert on.relation == expected
        assert sorted(r.values for r in on.relation) == sorted(
            r.values for r in off.relation
        ), query_name
        _assert_page_counters_sane(indexed_backend, backend)

    @pytest.mark.parametrize("workload_name", sorted(parameterized_queries()))
    def test_prepared_streaming_on_off_byte_identical(self, figure1_backend, workload_name):
        text, bindings = parameterized_queries()[workload_name]
        service = connect(figure1_backend).service
        prepared_on = service.prepare(text, StrategyOptions().with_(streaming_execution=True))
        prepared_off = service.prepare(text, StrategyOptions().with_(streaming_execution=False))
        for values in bindings:
            for _ in range(2):  # the second run exercises the collection memo
                on = prepared_on.execute(values).relation
                off = prepared_off.execute(values).relation
                assert sorted(r.values for r in on) == sorted(
                    r.values for r in off
                ), (workload_name, values)


def _force_sharding(options: StrategyOptions) -> StrategyOptions:
    """Sharding forced past the size gate, with the deterministic backend."""
    return options.with_(
        sharded_execution=True, shard_min_rows=0, shard_backend="serial"
    )


class TestShardedEquivalence:
    """``sharded_execution`` on/off × the full existing matrix.

    Sharded execution must be byte-identical to single-shard execution (and
    to the naive ground truth) across every strategy configuration, optimizer
    flag combination, storage backend and streaming mode the suite already
    crosses — the gate is forced open (``shard_min_rows=0``) so every cell
    genuinely partitions, reduces, dispatches and merges.
    """

    @pytest.mark.parametrize(
        "streaming", (False, True), ids=("streaming=off", "streaming=on")
    )
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_sharded_on_off_byte_identical_on_figure1(
        self, figure1_backend, backend, query_name, streaming, strategy_options
    ):
        base = strategy_options.with_(streaming_execution=streaming)
        expected = execute_naive(figure1_backend, QUERIES[query_name])
        on = QueryEngine(figure1_backend, _force_sharding(base)).run(QUERIES[query_name])
        off = QueryEngine(
            figure1_backend, base.with_(sharded_execution=False)
        ).run(QUERIES[query_name])
        assert on.relation == expected
        assert off.relation == expected
        assert sorted(r.values for r in on.relation) == sorted(
            r.values for r in off.relation
        )
        _assert_page_counters_sane(figure1_backend, backend)

    @pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
    @pytest.mark.parametrize("config_name", sorted(SCALE2_CONFIGS))
    def test_sharded_on_off_byte_identical_at_scale2(
        self, scale2_backend, backend, config_name, flags
    ):
        ordering, reduction = flags
        base = SCALE2_CONFIGS[config_name].with_(
            join_ordering=ordering, semijoin_reduction=reduction
        )
        for query_name in ("others_published_1977", "publishing_teachers", "example_2_1"):
            on = QueryEngine(scale2_backend, _force_sharding(base)).run(QUERIES[query_name])
            off = QueryEngine(
                scale2_backend, base.with_(sharded_execution=False)
            ).run(QUERIES[query_name])
            assert sorted(r.values for r in on.relation) == sorted(
                r.values for r in off.relation
            ), (config_name, query_name)
        _assert_page_counters_sane(scale2_backend, backend)

    @pytest.mark.parametrize("workload_name", sorted(parameterized_queries()))
    def test_prepared_sharded_on_off_byte_identical(self, figure1_backend, workload_name):
        text, bindings = parameterized_queries()[workload_name]
        service = connect(figure1_backend).service
        prepared_on = service.prepare(text, _force_sharding(StrategyOptions()))
        prepared_off = service.prepare(text, StrategyOptions().with_(sharded_execution=False))
        for values in bindings:
            for _ in range(2):  # the second run exercises the collection memo
                on = prepared_on.execute(values).relation
                off = prepared_off.execute(values).relation
                assert sorted(r.values for r in on) == sorted(
                    r.values for r in off
                ), (workload_name, values)


class TestPreparedMatchesColdAcrossBackends:
    """The service-layer acceptance row of the matrix."""

    @pytest.mark.parametrize("workload_name", sorted(parameterized_queries()))
    def test_prepared_byte_identical_to_cold(self, figure1_backend, backend, workload_name):
        text, bindings = parameterized_queries()[workload_name]
        engine = QueryEngine(figure1_backend)
        service = connect(figure1_backend).service
        prepared = service.prepare(text)
        for values in bindings:
            expected = engine.run(inline_parameters(text, values)).relation
            for _ in range(2):  # the second run exercises the collection memo
                result = prepared.execute(values)
                assert sorted(r.values for r in result.relation) == sorted(
                    r.values for r in expected
                ), (workload_name, values, backend)
        _assert_page_counters_sane(figure1_backend, backend)


# ------------------------------------------------ the bibliographic domain

from repro.workloads.bibliography import (  # noqa: E402 - grouped with its matrix
    bibliography_named_queries,
    bibliography_parameterized_queries,
    build_bibliography_database,
    create_standard_indexes,
)

BIBLIO_QUERIES = bibliography_named_queries()

#: The reference configuration for the bibliographic matrix.  *Not* the
#: naive interpreter: the citation chains nest quantifiers four deep, and
#: direct interpretation enumerates the full range product (the naive ground
#: truth for the affordable queries is pinned at scale 1 in
#: ``tests/workloads/test_bibliography.py``).  Strategy 1 with every
#: optimizer, execution and access-path feature off is the baseline every
#: flag combination must reproduce byte-identically.
BIBLIO_REFERENCE = StrategyOptions.only(parallel_collection=True)

BIBLIO_FLAG_MATRIX = list(itertools.product((False, True), repeat=3))


def _biblio_id(flags: tuple[bool, bool, bool]) -> str:
    streaming, sharded, index_paths = flags
    return (
        f"streaming={'on' if streaming else 'off'}"
        f"-sharded={'on' if sharded else 'off'}"
        f"-indexpaths={'on' if index_paths else 'off'}"
    )


@pytest.fixture(scope="module")
def bibliography_backend(backend):
    """The scale-2 bibliographic database, with its standard indexes, on the
    requested storage backend."""
    database = build_bibliography_database(scale=2, paged=(backend == "paged"))
    create_standard_indexes(database)
    return database


@pytest.fixture(scope="module")
def bibliography_reference(bibliography_backend):
    """Every named query's reference rows, computed once per backend."""
    engine = QueryEngine(bibliography_backend, BIBLIO_REFERENCE)
    return {
        name: sorted(r.values for r in engine.run(query).relation)
        for name, query in BIBLIO_QUERIES.items()
    }


class TestBibliographyEquivalence:
    """The full flag matrix over the second domain.

    streaming × sharded × index paths × {memory, paged} × every named
    citation query: Zipf-skewed many-to-many data with non-ASCII CharArray
    join keys is exactly where a backend- or shard-dependent bug would show
    as silently dropped rows rather than as a crash.
    """

    @pytest.mark.parametrize("flags", BIBLIO_FLAG_MATRIX, ids=_biblio_id)
    @pytest.mark.parametrize("query_name", sorted(BIBLIO_QUERIES))
    def test_flag_matrix_matches_reference(
        self, bibliography_backend, bibliography_reference, backend, query_name, flags
    ):
        streaming, sharded, index_paths = flags
        options = StrategyOptions.all_strategies().with_(
            collection_phase_quantifiers=False,
            streaming_execution=streaming,
            use_index_paths=index_paths,
            sharded_execution=False,
        )
        if sharded:
            options = _force_sharding(options)
        result = QueryEngine(bibliography_backend, options).run(BIBLIO_QUERIES[query_name])
        assert sorted(r.values for r in result.relation) == bibliography_reference[
            query_name
        ], (query_name, _biblio_id(flags))
        _assert_page_counters_sane(bibliography_backend, backend)

    def test_backends_agree_elementwise(self):
        memory = build_bibliography_database(scale=2, paged=False)
        paged = build_bibliography_database(scale=2, paged=True)
        for query_name, query in BIBLIO_QUERIES.items():
            memory_result = QueryEngine(memory).run(query)
            paged_result = QueryEngine(paged).run(query)
            assert sorted(r.values for r in memory_result.relation) == sorted(
                r.values for r in paged_result.relation
            ), query_name

    @pytest.mark.parametrize("workload_name", sorted(bibliography_parameterized_queries()))
    def test_prepared_byte_identical_to_cold(
        self, bibliography_backend, backend, workload_name
    ):
        text, bindings = bibliography_parameterized_queries()[workload_name]
        engine = QueryEngine(bibliography_backend)
        service = connect(bibliography_backend).service
        prepared = service.prepare(text)
        for values in bindings:
            expected = engine.run(inline_parameters(text, values)).relation
            for _ in range(2):  # the second run exercises the collection memo
                result = prepared.execute(values)
                assert sorted(r.values for r in result.relation) == sorted(
                    r.values for r in expected
                ), (workload_name, values, backend)
        _assert_page_counters_sane(bibliography_backend, backend)
