"""Cross-engine equivalence: the optimized combination phase vs. ground truth.

For every query in :func:`repro.workloads.queries.all_named_queries`, the
phase-structured engine must return exactly the relation computed by
:func:`repro.engine.evaluator.execute_naive`, under every combination of the
combination-phase optimizer flags (``join_ordering`` × ``semijoin_reduction``)
crossed with the representative strategy configurations of ``conftest``.
"""

from __future__ import annotations

import itertools

import pytest

from repro import QueryEngine, StrategyOptions, execute_naive
from repro.workloads.queries import all_named_queries

SCALE2_CONFIGS = {
    "all": StrategyOptions.all_strategies(),
    "none": StrategyOptions.none(),
    "s1": StrategyOptions.only(parallel_collection=True),
    "s1+s2": StrategyOptions.only(parallel_collection=True, one_step_nested=True),
    "s3+s4": StrategyOptions.only(
        extended_ranges=True, collection_phase_quantifiers=True
    ),
}

QUERIES = all_named_queries()

OPTIMIZER_FLAGS = list(itertools.product((False, True), repeat=2))


def _flag_id(flags: tuple[bool, bool]) -> str:
    ordering, reduction = flags
    return f"ordering={'on' if ordering else 'off'}-semijoin={'on' if reduction else 'off'}"


@pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_optimizer_flags_match_naive_on_figure1(figure1, query_name, flags, strategy_options):
    """All optimizer flag combinations × strategy configs, on the Figure 1 data."""
    ordering, reduction = flags
    options = strategy_options.with_(join_ordering=ordering, semijoin_reduction=reduction)
    expected = execute_naive(figure1, QUERIES[query_name])
    result = QueryEngine(figure1, options).execute(QUERIES[query_name])
    assert result.relation == expected


@pytest.mark.parametrize("flags", OPTIMIZER_FLAGS, ids=_flag_id)
@pytest.mark.parametrize("config_name", sorted(SCALE2_CONFIGS))
def test_optimizer_flags_match_naive_at_scale2(university_scale2, config_name, flags):
    """A larger database catches size-dependent ordering bugs; one query per cell."""
    ordering, reduction = flags
    options = SCALE2_CONFIGS[config_name].with_(
        join_ordering=ordering, semijoin_reduction=reduction
    )
    for query_name in ("others_published_1977", "publishing_teachers", "example_2_1"):
        expected = execute_naive(university_scale2, QUERIES[query_name])
        result = QueryEngine(university_scale2, options).execute(QUERIES[query_name])
        assert result.relation == expected, (config_name, query_name)
