"""Unit tests for the combination-phase optimizer (ordering + semijoin reducer)."""

from __future__ import annotations

import pytest

from repro import QueryEngine, StrategyOptions, build_university_database, execute_naive
from repro.engine.collection import CollectionPhase
from repro.engine.combination import CombinationPhase
from repro.relational.statistics import estimate_join_cardinality, join_selectivity
from repro.transform.pipeline import prepare_query
from repro.workloads.queries import (
    OTHERS_PUBLISHED_1977_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
    others_published_1977,
    teaches_low_level,
)

#: Only Strategy 1 on, so the dyadic structures reach the combination phase.
BASE = StrategyOptions.only(parallel_collection=True)
LEGACY = BASE
ORDERED = BASE.with_(join_ordering=True)
OPTIMIZED = BASE.with_(join_ordering=True, semijoin_reduction=True)


@pytest.fixture(scope="module")
def scale4():
    return build_university_database(scale=4)


def _combination(database, selection, options):
    from repro.calculus.typecheck import TypeChecker

    resolved = TypeChecker.for_database(database).resolve(selection)
    prepared = prepare_query(resolved, database, options, resolve=False)
    database.reset_statistics()
    collection = CollectionPhase(prepared, database, options).run()
    return CombinationPhase(prepared, database, collection, options).run()


class TestSelectivityHints:
    def test_join_selectivity_is_one_over_max_distinct(self):
        assert join_selectivity(10, 40) == 1.0 / 40
        assert join_selectivity(0, 0) == 1.0  # guarded against empty inputs

    def test_estimate_join_cardinality(self):
        assert estimate_join_cardinality(10, 40, 10, 40) == pytest.approx(10.0)
        assert estimate_join_cardinality(0, 40, 0, 40) == 0.0


class TestJoinOrdering:
    def test_join_order_recorded_per_conjunction(self, scale4):
        combination = _combination(scale4, others_published_1977(), OPTIMIZED)
        assert combination.join_orders, "join order should be recorded"
        for order in combination.join_orders:
            assert order, "every evaluated conjunction records its join order"
            for description, size in order:
                assert isinstance(description, str) and size >= 0

    def test_ordered_start_is_smallest_structure(self, scale4):
        combination = _combination(scale4, others_published_1977(), ORDERED)
        for order in combination.join_orders:
            first_size = order[0][1]
            rest = [size for description, size in order[1:] if not description.startswith("range of")]
            assert all(first_size <= size for size in rest)

    def test_conjunction_indexes_keep_positions_of_dropped_conjunctions(self, figure1):
        """join_orders/reductions align with the prepared matrix, not densely."""
        from repro.calculus.typecheck import TypeChecker
        from repro.lang.parser import parse_selection

        selection = parse_selection(
            "[<e.ename> OF EACH e IN employees:"
            " (e.estatus = professor) OR (e.estatus = student)]"
        )
        resolved = TypeChecker.for_database(figure1).resolve(selection)
        prepared = prepare_query(resolved, figure1, OPTIMIZED, resolve=False)
        assert len(prepared.conjunctions) == 2
        collection = CollectionPhase(prepared, figure1, OPTIMIZED).run()
        collection.conjunctions[0] = None  # simulate a dropped conjunction
        combination = CombinationPhase(prepared, figure1, collection, OPTIMIZED).run()
        assert combination.conjunction_indexes == [1]
        assert len(combination.join_orders) == 1

    def test_legacy_flag_preserves_textual_order(self, scale4):
        legacy = _combination(scale4, others_published_1977(), LEGACY)
        # The first structure of the conjunction in textual order is the
        # professor single list — legacy must start there regardless of size.
        assert any("single list" in order[0][0] for order in legacy.join_orders)


class TestSemijoinReduction:
    def test_reducer_shrinks_the_inequality_join(self, scale4):
        combination = _combination(scale4, others_published_1977(), OPTIMIZED)
        reduced = [r for per_conj in combination.reductions for r in per_conj if r[1] > r[2]]
        assert reduced, "the reducer should shrink at least one structure"
        indirect = [r for r in reduced if "indirect join" in r[0]]
        assert indirect, "the large inequality indirect join should shrink"

    def test_reduction_lowers_peak_tuples(self, scale4):
        legacy = _combination(scale4, others_published_1977(), LEGACY)
        optimized = _combination(scale4, others_published_1977(), OPTIMIZED)
        assert optimized.peak_tuples < legacy.peak_tuples

    def test_reductions_recorded_in_statistics(self, scale4):
        _combination(scale4, others_published_1977(), OPTIMIZED)
        stats = scale4.statistics
        assert stats.reduced_tuples > 0
        assert stats.reductions > 0
        snapshot = stats.as_dict()
        assert snapshot["reduced_tuples"] == stats.reduced_tuples
        assert snapshot["reductions"] == stats.reductions

    def test_no_reduction_counters_when_disabled(self, scale4):
        _combination(scale4, others_published_1977(), LEGACY)
        assert scale4.statistics.reduced_tuples == 0


class TestKernelAccounting:
    """Satellite: the algebra kernels feed the shared counters."""

    def test_combination_comparisons_and_intermediates_tracked(self, figure1):
        engine = QueryEngine(figure1, BASE)
        result = engine.run(TEACHES_LOW_LEVEL_TEXT)
        assert result.statistics["comparisons"] > 0
        # Every join step, union, projection and division reports its result
        # size, so the total is at least the recorded peak.
        assert result.statistics["intermediate_tuples"] >= result.combination.peak_tuples

    def test_peak_counts_intrajoin_intermediates(self, scale4):
        # Legacy order on the showcase query builds an intermediate larger
        # than the final conjunction relation; peak_tuples must see it.
        legacy = _combination(scale4, others_published_1977(), LEGACY)
        assert legacy.peak_tuples > max(legacy.conjunction_sizes)


class TestExplainAnalyze:
    def test_explain_analyze_shows_join_order_and_reductions(self, scale4):
        engine = QueryEngine(scale4, OPTIMIZED)
        report = engine.explain(OTHERS_PUBLISHED_1977_TEXT, analyze=True)
        assert "combination phase:" in report
        assert "join order:" in report
        assert "start with" in report
        assert "semijoin reductions:" in report
        assert "->" in report

    def test_explain_without_analyze_is_static(self, scale4):
        engine = QueryEngine(scale4, OPTIMIZED)
        report = engine.explain(OTHERS_PUBLISHED_1977_TEXT)
        assert "combination phase:" not in report

    def test_results_identical_with_and_without_optimizer(self, scale4):
        expected = execute_naive(scale4, TEACHES_LOW_LEVEL_TEXT)
        for options in (LEGACY, ORDERED, OPTIMIZED):
            assert QueryEngine(scale4, options).run(TEACHES_LOW_LEVEL_TEXT).relation == expected

    def test_separated_execution_reports_every_conjunction(self, figure1):
        from repro.workloads.queries import EXAMPLE_21_TEXT

        engine = QueryEngine(figure1, StrategyOptions(separate_existential_conjunctions=True))
        result = engine.run(EXAMPLE_21_TEXT)
        assert result.subqueries > 1
        # One combination report entry per evaluated conjunction, numbered by
        # matrix position (not restarting at 0 for every sub-query).
        assert result.combination is not None
        assert len(result.combination.join_orders) == result.subqueries
        assert result.combination.conjunction_indexes == list(range(result.subqueries))
        report = engine.explain(EXAMPLE_21_TEXT, analyze=True)
        for number in range(1, result.subqueries + 1):
            assert f"conjunction {number} join order:" in report

    def test_describe_names_new_flags(self):
        text = StrategyOptions.all_strategies().describe()
        assert "cost-ordered joins" in text
        assert "semijoin reduction" in text
        assert StrategyOptions.none().describe() == "no strategies"
