"""Property-based tests: the engine always agrees with the naive evaluator.

These are the library's strongest correctness guarantees.  For randomly
generated databases (empty relations drawn with elevated probability, so the
Lemma 1 edge cases are exercised) and randomly generated first-order queries,
every strategy configuration of the phase-structured engine must return
exactly the relation computed by direct interpretation of the calculus.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryEngine, StrategyOptions, connect
from repro.calculus.ast import (
    And,
    BoolConst,
    Comparison,
    Const,
    Formula,
    Not,
    Or,
    Param,
    Quantified,
    RangeExpr,
    Selection,
    VariableBinding,
)
from repro.calculus.typecheck import TypeChecker
from repro.engine.naive import evaluate_selection_naive
from repro.errors import PascalRError
from repro.service import bind_selection
from repro.transform.normalform import to_standard_form
from repro.transform.range_extension import extend_ranges
from repro.types.scalar import EnumValue, Enumeration, Subrange
from repro.workloads.generator import random_workload

CONFIGS = [
    StrategyOptions.all_strategies(),
    StrategyOptions.none(),
    StrategyOptions.only(parallel_collection=True, one_step_nested=True),
    StrategyOptions.only(extended_ranges=True),
    StrategyOptions.only(collection_phase_quantifiers=True),
    StrategyOptions(separate_existential_conjunctions=True),
    StrategyOptions(general_range_extensions=True),
]

PROPERTY_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def workload(seed: int):
    """A resolved random (database, selection) pair, or None when ill-typed."""
    database, selection = random_workload(seed)
    try:
        resolved = TypeChecker.for_database(database).resolve(selection)
    except PascalRError:
        return None
    return database, resolved


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_full_optimizer_matches_naive_evaluation(seed):
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    expected = evaluate_selection_naive(resolved, database)
    engine = QueryEngine(database)
    assert engine.run(resolved).relation == expected


@PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    config=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_every_strategy_configuration_matches_naive_evaluation(seed, config):
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    expected = evaluate_selection_naive(resolved, database)
    engine = QueryEngine(database)
    assert engine.run(resolved, options=CONFIGS[config]).relation == expected


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_standard_form_preserves_semantics(seed):
    """Prenex + DNF conversion does not change the naive evaluation result
    (when all range relations are non-empty, per the paper's assumption)."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    if any(relation.is_empty() for relation in database.relations()):
        return
    standardized = to_standard_form(resolved).to_selection()
    assert evaluate_selection_naive(standardized, database) == evaluate_selection_naive(
        resolved, database
    )


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_range_extension_preserves_semantics_on_nonempty_extensions(seed):
    """Strategy 3 preserves the naive result whenever the extended ranges are
    non-empty (the paper's applicability assumption)."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    if any(relation.is_empty() for relation in database.relations()):
        return
    form = to_standard_form(resolved)
    extension = extend_ranges(form)
    if not extension.changed:
        return
    from repro.engine.naive import range_elements

    extended = extension.standard_form
    ranges = [(binding.var, binding.range) for binding in extended.selection.bindings] + [
        (spec.var, spec.range) for spec in extended.prefix
    ]
    for var, range_expr in ranges:
        if range_expr.restriction is not None and not any(
            True for _ in range_elements(database, range_expr, var)
        ):
            return  # empty extension: the engine falls back, the rewrite alone need not hold
    rewritten = extended.to_selection()
    assert evaluate_selection_naive(rewritten, database) == evaluate_selection_naive(
        resolved, database
    )


# --------------------------------------------------- prepared-query properties


def _parameterize(selection: Selection):
    """Replace every constant operand with a named parameter.

    Returns the parameterized selection and the original values — the
    bindings under which the parameterized query must behave exactly like
    the original.
    """
    values: dict[str, object] = {}

    def sub_operand(operand):
        if isinstance(operand, Const):
            name = f"p{len(values)}"
            values[name] = operand.value
            return Param(name)
        return operand

    def sub_formula(formula: Formula) -> Formula:
        if isinstance(formula, BoolConst):
            return formula
        if isinstance(formula, Comparison):
            return Comparison(sub_operand(formula.left), formula.op, sub_operand(formula.right))
        if isinstance(formula, Not):
            return Not(sub_formula(formula.child))
        if isinstance(formula, And):
            return And(*(sub_formula(o) for o in formula.operands))
        if isinstance(formula, Or):
            return Or(*(sub_formula(o) for o in formula.operands))
        if isinstance(formula, Quantified):
            return Quantified(
                formula.kind, formula.var, sub_range(formula.range), sub_formula(formula.body)
            )
        raise AssertionError(f"unexpected node {formula!r}")

    def sub_range(range_expr: RangeExpr) -> RangeExpr:
        if range_expr.restriction is None:
            return range_expr
        return RangeExpr(range_expr.relation, sub_formula(range_expr.restriction))

    bindings = tuple(
        VariableBinding(b.var, sub_range(b.range)) for b in selection.bindings
    )
    return Selection(selection.columns, bindings, sub_formula(selection.formula)), values


def _perturb(prepared, base_values: dict, delta: int) -> dict:
    """A variant binding set: shift each value within its resolved type."""
    if delta == 0:
        return dict(base_values)
    variant = {}
    for name, value in base_values.items():
        parameter = prepared.parameters.get(name)
        scalar = parameter.type if parameter is not None else None
        if isinstance(scalar, Subrange):
            span = scalar.high - scalar.low + 1
            variant[name] = scalar.low + (int(value) - scalar.low + delta) % span
        elif isinstance(scalar, Enumeration) and isinstance(value, EnumValue):
            labels = scalar.labels
            position = (value.ordinal + delta) % len(labels)
            variant[name] = labels[position]
        else:
            variant[name] = value
    return variant


@PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    delta=st.integers(min_value=0, max_value=5),
)
def test_prepared_parameterized_query_matches_fresh_evaluation(seed, delta):
    """Prepare once, execute with several generated bindings: each run must
    equal naive evaluation of a freshly bound copy of the query — catching
    stale-plan and binding-leak bugs in the service layer."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    parameterized, base_values = _parameterize(resolved)
    if not base_values:
        return
    service = connect(database).service
    try:
        prepared = service.prepare(parameterized)
    except PascalRError:
        return  # e.g. the rewrite produced a parameter-only comparison
    for values in (base_values, _perturb(prepared, base_values, delta), base_values):
        coerced = {
            name: (prepared.parameters[name].type.coerce(value)
                   if prepared.parameters[name].type is not None else value)
            for name, value in values.items()
        }
        expected = evaluate_selection_naive(
            bind_selection(prepared.selection, coerced), database
        )
        result = prepared.execute(values)
        assert result.relation == expected, (seed, values)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_prepared_base_binding_reproduces_the_original_query(seed):
    """Binding the original constants back must reproduce the unparameterized
    query's naive result exactly (plan reuse does not change semantics)."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    parameterized, base_values = _parameterize(resolved)
    if not base_values:
        return
    expected = evaluate_selection_naive(resolved, database)
    service = connect(database).service
    try:
        prepared = service.prepare(parameterized)
    except PascalRError:
        return
    for _ in range(2):  # the second run exercises the collection memo
        assert prepared.execute(base_values).relation == expected, seed


@pytest.mark.parametrize("base_seed", [0, 1000, 2000, 3000])
def test_deterministic_replay_of_random_workloads(base_seed):
    """The generator is deterministic, so regression seeds stay meaningful."""
    first = random_workload(base_seed)
    second = random_workload(base_seed)
    assert first[1] == second[1]
    assert first[0].cardinalities() == second[0].cardinalities()


def test_dense_seed_sweep_all_strategies():
    """A deterministic sweep (no hypothesis shrinking) over 150 seeds."""
    rng = random.Random(7)
    seeds = [rng.randint(0, 100_000) for _ in range(150)]
    for seed in seeds:
        pair = workload(seed)
        if pair is None:
            continue
        database, resolved = pair
        expected = evaluate_selection_naive(resolved, database)
        engine = QueryEngine(database)
        for options in (CONFIGS[0], CONFIGS[1]):
            assert engine.run(resolved, options=options).relation == expected, seed
