"""Unit and property tests for the streaming operator pipeline.

The tentpole invariant is byte-identical results between
``streaming_execution`` on and off (the matrix in
``test_equivalence.py`` covers the full configuration cross); this module
tests the pipeline machinery itself — the :class:`RowStream` protocol, the
streaming kernels, the short-circuit quantifier elimination, the live-tuple
accounting and the EXPLAIN annotations — plus a hypothesis property over
random workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryEngine, StrategyOptions, execute_naive
from repro.calculus.typecheck import TypeChecker
from repro.engine.collection import CollectionPhase
from repro.engine.combination import CombinationPhase
from repro.engine.construction import ConstructionPhase
from repro.engine.naive import evaluate_selection_naive
from repro.engine.stream import LiveTupleTracker, RowStream
from repro.errors import PascalRError, StreamError
from repro.relational.algebra import (
    stream_divide,
    stream_natural_join,
    stream_project,
    stream_semijoin,
    stream_union,
)
from repro.relational.relation import Relation
from repro.transform.pipeline import prepare_query
from repro.types.scalar import INTEGER
from repro.types.schema import RelationSchema
from repro.workloads.generator import random_workload
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    NO_1977_PAPERS_TEXT,
    OTHERS_PUBLISHED_1977_TEXT,
    PUBLISHING_TEACHERS_TEXT,
)

#: Strategy 1 only, streamed — the configuration under which the combination
#: phase actually sees multi-structure conjunctions.
S1_STREAMED = StrategyOptions.only(
    parallel_collection=True,
    join_ordering=True,
    semijoin_reduction=True,
    streaming_execution=True,
)
S1_MATERIALIZED = S1_STREAMED.with_(streaming_execution=False)


def make(name: str, fields: list[str], rows: list[tuple]) -> Relation:
    schema = RelationSchema(name, [(f, INTEGER) for f in fields])
    relation = Relation(name, schema)
    for row in rows:
        relation.insert(dict(zip(fields, row)))
    return relation


# ------------------------------------------------------------------ RowStream protocol


class TestRowStream:
    def test_streams_are_single_use(self):
        r = make("r", ["a"], [(1,), (2,)])
        stream = RowStream.from_relation(r)
        assert sorted(stream) == [(1,), (2,)]
        with pytest.raises(StreamError):
            list(stream)

    def test_materialize_collapses_duplicates(self):
        r = make("r", ["a", "b"], [(1, 2), (1, 3)])
        stream = stream_project(RowStream.from_relation(r), ["a"])
        result = stream.materialize("p")
        assert len(result) == 1
        assert result.schema.field_names == ("a",)

    def test_map_rows_is_pure_passthrough(self):
        r = make("r", ["a"], [(1,), (2,)])
        doubled = RowStream.from_relation(r).map_rows(lambda row: (row[0] * 2,))
        assert sorted(doubled) == [(2,), (4,)]

    def test_live_tuple_tracker_tracks_high_water(self):
        live = LiveTupleTracker()
        live.acquire(3)
        live.acquire(2)
        live.release(4)
        live.acquire(1)
        assert live.current == 2
        assert live.peak == 5


# ------------------------------------------------------------------ streaming kernels


class TestStreamingKernels:
    def test_stream_natural_join_matches_materialized(self):
        left = make("l", ["a", "b"], [(1, 10), (2, 20), (3, 30)])
        right = make("r", ["b", "c"], [(10, 7), (10, 8), (30, 9)])
        rows = sorted(stream_natural_join(RowStream.from_relation(left), right))
        assert rows == [(1, 10, 7), (1, 10, 8), (3, 30, 9)]

    def test_stream_natural_join_without_common_is_product(self):
        left = make("l", ["a"], [(1,), (2,)])
        right = make("r", ["b"], [(7,), (8,)])
        rows = sorted(stream_natural_join(RowStream.from_relation(left), right))
        assert rows == [(1, 7), (1, 8), (2, 7), (2, 8)]

    def test_stream_semijoin_emits_each_left_row_once(self):
        left = make("l", ["a"], [(1,), (2,), (3,)])
        right = make("r", ["a", "x"], [(1, 1), (1, 2), (1, 3), (3, 1)])
        rows = sorted(stream_semijoin(RowStream.from_relation(left), right, on=[("a", "a")]))
        assert rows == [(1,), (3,)]  # one witness per group, not one per partner

    def test_stream_union_dedups_and_earlier_source_wins(self):
        a = make("a", ["x"], [(1,), (2,)])
        b = make("b", ["x"], [(2,), (3,)])
        live = LiveTupleTracker()
        rows = list(stream_union(
            (RowStream.from_relation(a), RowStream.from_relation(b)), live=live
        ))
        assert rows == [(1,), (2,), (3,)]
        assert live.peak == 3  # the dedup set is breaker state
        assert live.current == 0  # released when the generator closed

    def test_stream_divide_streams_groupwise(self):
        takes = make("takes", ["student", "course"], [
            (1, 10), (1, 20), (2, 10), (3, 10), (3, 20),
        ])
        required = make("required", ["course"], [(10,), (20,)])
        live = LiveTupleTracker()
        rows = sorted(stream_divide(
            RowStream.from_relation(takes), required, by=[("course", "course")], live=live
        ))
        assert rows == [(1,), (3,)]
        assert live.peak == 5  # buffered one entry per (group, match)
        assert live.current == 0

    def test_stream_project_dedup_emits_first_witness_only(self):
        r = make("r", ["a", "b"], [(1, 1), (1, 2), (2, 1)])
        live = LiveTupleTracker()
        rows = list(stream_project(RowStream.from_relation(r), ["a"], dedup=True, live=live))
        assert rows == [(1,), (2,)]
        assert live.peak == 2

    def test_breaker_state_released_on_early_close(self):
        r = make("r", ["a", "b"], [(i, i) for i in range(10)])
        live = LiveTupleTracker()
        stream = stream_project(RowStream.from_relation(r), ["a"], dedup=True, live=live)
        iterator = iter(stream)
        next(iterator)
        next(iterator)
        assert live.current == 2
        iterator.close()
        assert live.current == 0


# --------------------------------------------------------------- pipeline integration


class TestStreamingExecution:
    def test_rows_streamed_and_operators_counted(self, figure1):
        result = QueryEngine(figure1, S1_STREAMED).run(PUBLISHING_TEACHERS_TEXT)
        assert result.statistics["rows_streamed"] > 0
        assert result.statistics["operators_pipelined"] > 0
        assert result.combination.streamed

    def test_no_streaming_counters_when_disabled(self, figure1):
        result = QueryEngine(figure1, S1_MATERIALIZED).run(PUBLISHING_TEACHERS_TEXT)
        assert result.statistics["rows_streamed"] == 0
        assert result.statistics["operators_pipelined"] == 0
        assert not result.combination.streamed

    def test_semijoin_short_circuit_applies_on_the_showcase_query(self, figure1):
        result = QueryEngine(figure1, S1_STREAMED).run(OTHERS_PUBLISHED_1977_TEXT)
        notes = result.combination.operator_notes
        assert any(
            note.op.startswith("semijoin") and "short-circuit" in note.reason
            for note in notes
        ), [note.describe() for note in notes]

    def test_division_is_annotated_as_breaker(self, figure1):
        options = StrategyOptions.only(
            parallel_collection=True, streaming_execution=True
        )
        result = QueryEngine(figure1, options).run(NO_1977_PAPERS_TEXT)
        expected = execute_naive(figure1, NO_1977_PAPERS_TEXT)
        assert result.relation == expected
        notes = result.combination.operator_notes
        division = [n for n in notes if n.op.startswith("ALL division")]
        assert division and division[0].mode == "materialized"
        assert "breaker" in division[0].reason
        assert result.combination.peak_tuples > 0  # the group table buffered

    def test_union_dedup_annotated_over_multiple_conjunctions(self, figure1):
        options = StrategyOptions.only(
            parallel_collection=True, streaming_execution=True
        )
        result = QueryEngine(figure1, options).run(EXAMPLE_21_TEXT)
        notes = result.combination.operator_notes
        union_notes = [n for n in notes if n.op.startswith("union")]
        assert union_notes and "dedup" in union_notes[0].reason

    def test_sizes_finalized_after_execution(self, figure1):
        result = QueryEngine(figure1, S1_STREAMED).run(OTHERS_PUBLISHED_1977_TEXT)
        combination = result.combination
        assert combination.after_quantifiers_size == len(combination.tuples)
        assert combination.union_size >= combination.after_quantifiers_size
        assert len(combination.conjunction_sizes) == len(combination.conjunction_indexes)

    def test_streamed_peak_below_materialized_peak(self, figure1):
        streamed = QueryEngine(figure1, S1_STREAMED).run(OTHERS_PUBLISHED_1977_TEXT)
        materialized = QueryEngine(figure1, S1_MATERIALIZED).run(OTHERS_PUBLISHED_1977_TEXT)
        assert streamed.relation == materialized.relation
        assert streamed.combination.peak_tuples <= materialized.combination.peak_tuples

    def test_explain_analyze_annotates_streamed_and_materialized(self, figure1):
        options = StrategyOptions.only(
            parallel_collection=True, streaming_execution=True
        )
        report = QueryEngine(figure1, options).explain(NO_1977_PAPERS_TEXT, analyze=True)
        assert "execution: streaming pipeline" in report
        assert "operators:" in report
        assert ": streamed — " in report
        assert ": materialized — " in report  # the division breaker

    def test_explain_analyze_reports_materialized_mode_when_off(self, figure1):
        options = StrategyOptions.only(parallel_collection=True)
        report = QueryEngine(figure1, options).explain(NO_1977_PAPERS_TEXT, analyze=True)
        assert "execution: materialized" in report
        assert "streaming_execution off" in report

    def test_construction_rerun_falls_back_to_materialized_tuples(self, figure1):
        resolved = TypeChecker.for_database(figure1).resolve(
            QueryEngine(figure1).parse(PUBLISHING_TEACHERS_TEXT)
        )
        prepared = prepare_query(resolved, figure1, S1_STREAMED, resolve=False)
        collection = CollectionPhase(prepared, figure1, S1_STREAMED).run()
        combination = CombinationPhase(prepared, figure1, collection, S1_STREAMED).run()
        assert combination.stream is not None
        first = ConstructionPhase(resolved, figure1).run(combination)
        assert combination.stream is None  # consumed
        second = ConstructionPhase(resolved, figure1).run(combination)
        assert first == second

    def test_partially_consumed_stream_is_rejected_loudly(self, figure1):
        """A stream someone peeked at holds only a prefix in ``tuples`` —
        construction must raise rather than silently truncate the result."""
        resolved = TypeChecker.for_database(figure1).resolve(
            QueryEngine(figure1).parse(PUBLISHING_TEACHERS_TEXT)
        )
        prepared = prepare_query(resolved, figure1, S1_STREAMED, resolve=False)
        collection = CollectionPhase(prepared, figure1, S1_STREAMED).run()
        combination = CombinationPhase(prepared, figure1, collection, S1_STREAMED).run()
        iterator = iter(combination.stream)
        next(iterator)  # peek one row, then abandon
        iterator.close()
        with pytest.raises(StreamError):
            ConstructionPhase(resolved, figure1).run(combination)

    def test_fully_drained_stream_makes_tuples_fallback_safe(self, figure1):
        """Complete external exhaustion clears ``stream`` and materialises
        ``tuples`` in full, so construction still returns the exact result."""
        resolved = TypeChecker.for_database(figure1).resolve(
            QueryEngine(figure1).parse(PUBLISHING_TEACHERS_TEXT)
        )
        prepared = prepare_query(resolved, figure1, S1_STREAMED, resolve=False)
        collection = CollectionPhase(prepared, figure1, S1_STREAMED).run()
        combination = CombinationPhase(prepared, figure1, collection, S1_STREAMED).run()
        drained = list(combination.stream)
        assert combination.stream is None
        assert len(combination.tuples) == len(set(drained))
        result = ConstructionPhase(resolved, figure1).run(combination)
        expected = QueryEngine(figure1, S1_MATERIALIZED).run(PUBLISHING_TEACHERS_TEXT)
        assert result == expected.relation

    def test_separated_conjunctions_stream_per_subquery(self, figure1):
        options = StrategyOptions(separate_existential_conjunctions=True)
        result = QueryEngine(figure1, options).run(EXAMPLE_21_TEXT)
        expected = execute_naive(figure1, EXAMPLE_21_TEXT)
        assert result.relation == expected
        assert result.subqueries > 1
        assert result.combination.streamed


# ------------------------------------------------------------------ hypothesis property

PROPERTY_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

STREAM_CONFIGS = [
    StrategyOptions.all_strategies(),
    StrategyOptions.none().with_(streaming_execution=True),
    StrategyOptions.only(parallel_collection=True, streaming_execution=True),
    StrategyOptions(separate_existential_conjunctions=True),
]


def workload(seed: int):
    database, selection = random_workload(seed)
    try:
        resolved = TypeChecker.for_database(database).resolve(selection)
    except PascalRError:
        return None
    return database, resolved


@PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    config=st.integers(min_value=0, max_value=len(STREAM_CONFIGS) - 1),
)
def test_streamed_and_materialized_agree_on_random_workloads(seed, config):
    """Streamed execution is byte-identical to materialised execution (and to
    the naive ground truth) on randomly generated databases and queries."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    expected = evaluate_selection_naive(resolved, database)
    engine = QueryEngine(database)
    options = STREAM_CONFIGS[config]
    streamed = engine.run(resolved, options=options.with_(streaming_execution=True))
    materialized = engine.run(resolved, options=options.with_(streaming_execution=False))
    assert streamed.relation == expected
    assert materialized.relation == expected
    assert sorted(r.values for r in streamed.relation) == sorted(
        r.values for r in materialized.relation
    )


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_rows_streamed_positive_whenever_a_join_pipelines(seed):
    """``rows_streamed > 0`` whenever streaming is on, the prepared matrix
    holds a dyadic (join) structure, and the join's inputs are non-empty."""
    pair = workload(seed)
    if pair is None:
        return
    database, resolved = pair
    options = StrategyOptions.only(parallel_collection=True, streaming_execution=True)
    engine = QueryEngine(database, options)
    try:
        result = engine.run(resolved)
    except PascalRError:
        return
    assert result.relation == evaluate_selection_naive(resolved, database)
    if result.combination is None or not result.combination.streamed:
        return
    # Every result row was pulled through the pipeline, so a non-empty
    # result implies positive streaming throughput.  (A conjunction whose
    # source structure — or an annihilating empty range gate — is empty may
    # legitimately stream nothing.)
    if len(result.relation) > 0:
        assert result.statistics["rows_streamed"] > 0, seed
    has_live_source = any(
        order and order[0][1] > 0 for order in result.combination.join_orders
    )
    if has_live_source and not any(
        "gate" in note.op for note in result.combination.operator_notes
    ):
        assert result.statistics["rows_streamed"] > 0, seed
