"""Integration tests for the query engine across strategy configurations."""

import pytest

from repro import QueryEngine, StrategyOptions, execute_naive
from repro.calculus import builder as q
from repro.errors import ScopeError
from repro.workloads.queries import (
    EXAMPLE_21_TEXT,
    EXAMPLE_45_TEXT,
    NO_1977_PAPERS_TEXT,
    PROFESSORS_TEXT,
    SENIORITY_TEXT,
    TEACHES_LOW_LEVEL_TEXT,
    all_named_queries,
)

PAPER_QUERIES = {
    "example_2_1": EXAMPLE_21_TEXT,
    "example_4_5": EXAMPLE_45_TEXT,
    "professors": PROFESSORS_TEXT,
    "teaches_low_level": TEACHES_LOW_LEVEL_TEXT,
    "no_1977_papers": NO_1977_PAPERS_TEXT,
    "seniority": SENIORITY_TEXT,
}


class TestEquivalenceWithNaiveEvaluation:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_every_strategy_config_matches_naive(self, figure1, name, strategy_options):
        text = PAPER_QUERIES[name]
        expected = execute_naive(figure1, text)
        engine = QueryEngine(figure1, strategy_options)
        assert engine.run(text).relation == expected

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_scale2_database(self, university_scale2, name):
        text = PAPER_QUERIES[name]
        expected = execute_naive(university_scale2, text)
        engine = QueryEngine(university_scale2)
        assert engine.run(text).relation == expected
        unopt = engine.run(text, options=StrategyOptions.none())
        assert unopt.relation == expected

    def test_example_45_equals_example_21(self, engine):
        """Strategy 3's target formulation returns the same result as the original."""
        assert engine.run(EXAMPLE_45_TEXT).relation == engine.run(EXAMPLE_21_TEXT).relation

    def test_builder_queries_match_text_queries(self, figure1):
        engine = QueryEngine(figure1)
        for name, selection in all_named_queries().items():
            by_ast = engine.run(selection)
            assert len(by_ast.relation) == len(by_ast.relation)  # smoke: executes without error


class TestPaperEfficiencyClaims:
    def test_full_optimizer_scans_each_relation_once(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.run(EXAMPLE_21_TEXT)
        scans = {name: counters["scans"] for name, counters in result.statistics["relations"].items()}
        assert scans == {"employees": 1, "papers": 1, "courses": 1, "timetable": 1}

    def test_unoptimized_evaluation_scans_more_and_builds_more(self, figure1):
        engine = QueryEngine(figure1)
        optimized = engine.run(EXAMPLE_21_TEXT)
        unoptimized = engine.run(EXAMPLE_21_TEXT, options=StrategyOptions.none())
        opt_scans = sum(c["scans"] for c in optimized.statistics["relations"].values())
        unopt_scans = sum(c["scans"] for c in unoptimized.statistics["relations"].values())
        assert opt_scans < unopt_scans
        assert (
            optimized.statistics["intermediate_tuples"]
            < unoptimized.statistics["intermediate_tuples"]
        )

    def test_strategy4_removes_the_division_step(self, figure1):
        engine = QueryEngine(figure1)
        optimized = engine.run(EXAMPLE_21_TEXT)
        assert optimized.prepared.prefix == ()
        with_division = engine.run(
            EXAMPLE_21_TEXT, options=StrategyOptions(collection_phase_quantifiers=False)
        )
        assert any(spec.kind == "ALL" for spec in with_division.prepared.prefix)
        assert with_division.relation == optimized.relation

    def test_elapsed_time_and_rows_reported(self, engine):
        result = engine.run(PROFESSORS_TEXT)
        assert result.elapsed_seconds >= 0
        assert len(result.rows) == len(result)


class TestRuntimeAdaptation:
    def test_empty_papers_relation_example_22(self, figure1):
        """With papers = [] the answer is exactly the professors (Example 2.2)."""
        figure1.relation("papers").clear()
        engine = QueryEngine(figure1)
        result = engine.run(EXAMPLE_21_TEXT)
        professors = {
            e.ename for e in figure1.relation("employees") if e.estatus.label == "professor"
        }
        assert {r.ename for r in result.relation} == professors
        assert "empty-relation adaptation" in result.prepared.trace.names()
        assert result.relation == execute_naive(figure1, EXAMPLE_21_TEXT)

    def test_empty_courses_relation(self, figure1, strategy_options):
        figure1.relation("courses").clear()
        figure1.relation("timetable").clear()
        expected = execute_naive(figure1, EXAMPLE_21_TEXT)
        engine = QueryEngine(figure1, strategy_options)
        assert engine.run(EXAMPLE_21_TEXT).relation == expected

    def test_strategy3_fallback_when_extension_is_empty(self, figure1):
        """If no employee is a professor, e's extended range is empty at runtime."""
        employees = figure1.relation("employees")
        demoted = [
            record.replace(estatus="assistant") if record.estatus.label == "professor" else record
            for record in employees.elements()
        ]
        employees.assign(demoted)
        engine = QueryEngine(figure1)
        result = engine.run(EXAMPLE_21_TEXT)
        assert result.used_strategy3_fallback
        assert result.relation == execute_naive(figure1, EXAMPLE_21_TEXT)
        assert len(result.relation) == 0

    def test_all_relations_empty(self, figure1, strategy_options):
        for name in ("employees", "papers", "courses", "timetable"):
            figure1.relation(name).clear()
        engine = QueryEngine(figure1, strategy_options)
        assert len(engine.run(EXAMPLE_21_TEXT).relation) == 0


class TestEngineInterface:
    def test_parse_rejects_unknown_relations(self, engine):
        with pytest.raises(ScopeError):
            engine.parse("[<x.a> OF EACH x IN unknown_relation: true]")

    def test_prepare_exposes_trace(self, engine):
        prepared = engine.prepare(EXAMPLE_21_TEXT)
        assert prepared.trace.names()

    def test_explain_mentions_strategies_and_scan_order(self, engine):
        text = engine.explain(EXAMPLE_21_TEXT)
        assert "S3 extended ranges" in text
        assert "collection-phase scan order" in text
        assert "employees" in text

    def test_explain_unoptimized(self, figure1):
        engine = QueryEngine(figure1, StrategyOptions.none())
        text = engine.explain(EXAMPLE_21_TEXT)
        assert "quantifier prefix" in text
        assert "ALL p" in text

    def test_describe_summarises_result(self, engine):
        result = engine.run(EXAMPLE_21_TEXT)
        description = result.describe()
        assert "result:" in description
        assert "transformations:" in description

    def test_separated_execution_counts_subqueries(self, figure1):
        engine = QueryEngine(figure1, StrategyOptions(separate_existential_conjunctions=True))
        result = engine.run(TEACHES_LOW_LEVEL_TEXT)
        assert result.subqueries >= 1

    def test_statistics_are_reset_between_runs_by_default(self, engine):
        first = engine.run(PROFESSORS_TEXT)
        second = engine.run(PROFESSORS_TEXT)
        assert first.statistics["relations"]["employees"]["scans"] == \
            second.statistics["relations"]["employees"]["scans"]

    def test_constant_true_query(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.run("[<e.ename> OF EACH e IN employees: true]")
        distinct_names = {e.ename for e in figure1.relation("employees")}
        assert {r.ename for r in result.relation} == distinct_names

    def test_constant_false_query(self, figure1):
        engine = QueryEngine(figure1)
        result = engine.run("[<e.ename> OF EACH e IN employees: false]")
        assert len(result.relation) == 0
