"""Sharded parallel execution: the kernel, the gate, the backends, the counters.

The cross-backend and vs-classic equivalences live in
``tests/engine/test_equivalence.py`` (:class:`TestShardedEquivalence`); this
module unit-tests the pieces — the pure-tuple shard kernel, the
``applicable`` gate, backend resolution, shard pruning, the statistics
discipline (per-shard merges through the shared lock), EXPLAIN output and
the service layer.
"""

import pytest

from repro import QueryEngine, StrategyOptions, connect, execute_naive
from repro.engine.shard import (
    BACKEND_ENV,
    ShardedCombination,
    evaluate_shard,
    resolve_backend,
)
from repro.relational.statistics import AccessStatistics
from repro.workloads.queries import PUBLISHING_TEACHERS_TEXT, all_named_queries
from repro.workloads.university import build_university_database, figure1_database

# Dyadic structures must survive into the combination phase for sharding to
# have real cross-shard work; S4 would collapse them into single lists.
DYADIC = StrategyOptions.all_strategies().with_(collection_phase_quantifiers=False)
SHARDED = DYADIC.with_(sharded_execution=True, shard_min_rows=0, shard_backend="serial")


@pytest.fixture(scope="module")
def scale4():
    return build_university_database(scale=4, paged=False)


def _rows(result):
    return sorted(r.values for r in result.relation)


# ------------------------------------------------------------------- the kernel


def _ref(relation, key):
    return (relation, (key,))


class TestEvaluateShard:
    def test_join_and_some_elimination(self):
        e1, e2 = _ref("employees", 1), _ref("employees", 2)
        p1, p2 = _ref("papers", 1), _ref("papers", 2)
        payload = {
            "variables": ["e", "p"],
            "free": ["e"],
            "prefix": [("SOME", "p")],
            "conjunctions": [
                {
                    "structures": [
                        {"vars": ("e", "p"), "desc": "ep", "rows": [(e1, p1), (e1, p2)]}
                    ]
                }
            ],
            "ranges": {"e": [e1, e2], "p": [p1, p2]},
            "join_ordering": True,
        }
        outcome = evaluate_shard(payload)
        assert outcome["rows"] == [(e1,)]
        assert outcome["union_size"] == 2
        assert outcome["conjunction_sizes"] == [2]
        assert outcome["work"] > 0  # no join ran, so no comparisons — just rows

    def test_all_division_keeps_only_complete_groups(self):
        e1, e2 = _ref("employees", 1), _ref("employees", 2)
        p1, p2 = _ref("papers", 1), _ref("papers", 2)
        payload = {
            "variables": ["e", "p"],
            "free": ["e"],
            "prefix": [("ALL", "p")],
            "conjunctions": [
                {
                    "structures": [
                        {
                            "vars": ("e", "p"),
                            "desc": "ep",
                            "rows": [(e1, p1), (e1, p2), (e2, p1)],
                        }
                    ]
                }
            ],
            "ranges": {"e": [e1, e2], "p": [p1, p2]},
            "join_ordering": True,
        }
        outcome = evaluate_shard(payload)
        assert outcome["rows"] == [(e1,)]  # e2 lacks p2

    def test_true_conjunction_enumerates_the_shard_local_range(self):
        e1, e2 = _ref("employees", 1), _ref("employees", 2)
        payload = {
            "variables": ["e"],
            "free": ["e"],
            "prefix": [],
            "conjunctions": [{"structures": []}],
            "ranges": {"e": [e2, e1]},
            "join_ordering": False,
        }
        assert evaluate_shard(payload)["rows"] == [(e1,), (e2,)]

    def test_unmentioned_variables_are_extended_with_their_ranges(self):
        e1 = _ref("employees", 1)
        c1, c2 = _ref("courses", 1), _ref("courses", 2)
        payload = {
            "variables": ["e", "c"],
            "free": ["e", "c"],
            "prefix": [],
            "conjunctions": [
                {"structures": [{"vars": ("e",), "desc": "e", "rows": [(e1,)]}]}
            ],
            "ranges": {"e": [e1], "c": [c1, c2]},
            "join_ordering": True,
        }
        assert evaluate_shard(payload)["rows"] == [(e1, c1), (e1, c2)]

    def test_rows_are_sorted_for_deterministic_merging(self):
        refs = [_ref("employees", n) for n in (5, 3, 9, 1)]
        payload = {
            "variables": ["e"],
            "free": ["e"],
            "prefix": [],
            "conjunctions": [{"structures": []}],
            "ranges": {"e": refs},
            "join_ordering": True,
        }
        rows = evaluate_shard(payload)["rows"]
        assert rows == sorted(rows)


# ------------------------------------------------------------------- the gate


class TestGate:
    def test_small_databases_stay_on_the_classic_path(self):
        # Default options: shard_min_rows=64 but Figure 1 structures are tiny.
        db = figure1_database(paged=False)
        result = QueryEngine(db).run(all_named_queries()["publishing_teachers"])
        assert result.combination.shard_report is None
        assert db.statistics.shards_scanned == 0

    def test_forcing_the_gate_engages_sharding(self, scale4):
        result = QueryEngine(scale4, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
        report = result.combination.shard_report
        assert report is not None
        assert report.variable == "e"
        assert report.scanned + report.pruned == SHARDED.shard_count
        assert scale4.statistics.shards_scanned == report.scanned

    def test_none_and_only_presets_disable_sharding(self, scale4):
        for options in (StrategyOptions.none(), StrategyOptions.only(join_ordering=True)):
            assert not options.sharded_execution
            result = QueryEngine(scale4, options.with_(shard_min_rows=0)).run(
                PUBLISHING_TEACHERS_TEXT
            )
            assert result.combination.shard_report is None

    def test_min_rows_gate_respects_structure_sizes(self, scale4):
        gated = DYADIC.with_(shard_min_rows=10**6)
        result = QueryEngine(scale4, gated).run(PUBLISHING_TEACHERS_TEXT)
        assert result.combination.shard_report is None

    def test_shard_variable_picks_the_heaviest_free_variable(self, scale4):
        engine = QueryEngine(scale4, SHARDED)
        result = engine.run(PUBLISHING_TEACHERS_TEXT)
        assert result.combination.shard_report.variable == "e"


# --------------------------------------------------------------- backend dispatch


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_every_backend_matches_the_naive_evaluator(self, scale4, backend):
        options = SHARDED.with_(shard_backend=backend)
        expected = execute_naive(scale4, PUBLISHING_TEACHERS_TEXT)
        result = QueryEngine(scale4, options).run(PUBLISHING_TEACHERS_TEXT)
        assert sorted(r.values for r in result.relation) == sorted(
            r.values for r in expected
        )

    def test_auto_resolves_to_thread_by_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(StrategyOptions(shard_backend="auto")) == "thread"

    def test_auto_honours_the_environment_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend(StrategyOptions(shard_backend="auto")) == "process"

    def test_explicit_backend_ignores_the_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend(StrategyOptions(shard_backend="serial")) == "serial"

    def test_unknown_backend_falls_back_to_thread(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        assert resolve_backend(StrategyOptions(shard_backend="auto")) == "thread"


# ------------------------------------------------------------------- pruning


class TestShardPruning:
    def test_overpartitioning_prunes_empty_shards(self):
        # 8 employees into 32 hash shards: several shards necessarily empty.
        db = figure1_database(paged=False)
        options = SHARDED.with_(shard_count=32)
        result = QueryEngine(db, options).run(PUBLISHING_TEACHERS_TEXT)
        report = result.combination.shard_report
        assert report is not None
        assert report.pruned > 0
        assert db.statistics.shards_pruned == report.pruned
        assert db.statistics.shards_scanned == report.scanned
        # pruning may not change the answer
        expected = execute_naive(db, PUBLISHING_TEACHERS_TEXT)
        assert sorted(r.values for r in result.relation) == sorted(
            r.values for r in expected
        )


# ------------------------------------------------------------- partition layout


class TestRangeLayoutAutoPick:
    """Hash-shard skew flips the partition layout to range (PR 9)."""

    HOT, TAIL = 0, 12
    QUERY = "[<i.id> OF EACH i IN items: SOME l IN links (l.ref = i.id)]"

    def _database(self):
        from repro.relational.database import Database
        from repro.types.scalar import Subrange

        # One hot item owns 100 links; hash placement would pile all of them
        # onto whichever shard key 0 hashes to, so the predicted max/mean
        # load crosses ``shard_skew_threshold`` and the planner cuts
        # frequency-weighted range bounds instead.
        database = Database("skew")
        database.create_relation(
            "items", [("id", Subrange(0, 999, "itemid"))], key=["id"]
        )
        database.create_relation(
            "links",
            [("lid", Subrange(0, 9999, "linkid")), ("ref", Subrange(0, 999, "linkref"))],
            key=["lid"],
        )
        items = database.relation("items")
        for i in range(self.TAIL + 1):
            items.insert({"id": i})
        links = database.relation("links")
        lid = 0
        for _ in range(100):
            links.insert({"lid": lid, "ref": self.HOT})
            lid += 1
        for i in range(1, self.TAIL + 1):
            links.insert({"lid": lid, "ref": i})
            lid += 1
        return database

    def test_skew_flips_the_layout_to_range(self):
        result = QueryEngine(self._database(), SHARDED).run(self.QUERY)
        report = result.combination.shard_report
        assert report is not None
        assert report.spec.startswith("range(i_ref)"), report.spec

    def test_range_and_hash_layouts_are_byte_identical(self):
        database = self._database()
        ranged = QueryEngine(database, SHARDED).run(self.QUERY)
        hashed = QueryEngine(
            database, SHARDED.with_(shard_skew_threshold=0.0)
        ).run(self.QUERY)
        unsharded = QueryEngine(
            database, SHARDED.with_(sharded_execution=False)
        ).run(self.QUERY)
        assert ranged.combination.shard_report.spec.startswith("range(")
        assert hashed.combination.shard_report.spec.startswith("hash(")
        assert _rows(ranged) == _rows(hashed) == _rows(unsharded)

    def test_statistics_off_keeps_the_hash_layout(self):
        options = SHARDED.with_(histogram_statistics=False)
        result = QueryEngine(self._database(), options).run(self.QUERY)
        assert result.combination.shard_report.spec.startswith("hash(")

    def test_uniform_loads_keep_the_hash_layout(self, scale4):
        result = QueryEngine(scale4, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
        assert result.combination.shard_report.spec.startswith("hash(")


# ------------------------------------------------------------------- statistics


class TestStatisticsDiscipline:
    def test_new_counters_round_trip_through_dict_reset_merge(self):
        stats = AccessStatistics()
        stats.record_shards_scanned(3)
        stats.record_shards_pruned(1)
        stats.record_bytes_shipped(120)
        stats.record_reducer_round(2)
        snapshot = stats.as_dict()
        assert snapshot["shards_scanned"] == 3
        assert snapshot["shards_pruned"] == 1
        assert snapshot["bytes_shipped"] == 120
        assert snapshot["reducer_rounds"] == 2
        other = AccessStatistics()
        other.merge(stats)
        assert other.as_dict()["bytes_shipped"] == 120
        stats.reset()
        assert stats.as_dict()["shards_scanned"] == 0

    def test_summary_mentions_shards(self):
        stats = AccessStatistics()
        stats.record_shards_scanned(2)
        assert "shards" in stats.summary()

    def test_sharded_run_records_shipping_and_reducer_rounds(self, scale4):
        result = QueryEngine(scale4, SHARDED).run(PUBLISHING_TEACHERS_TEXT)
        report = result.combination.shard_report
        assert scale4.statistics.bytes_shipped == report.shipped_bytes > 0
        assert scale4.statistics.reducer_rounds == report.reducer_rounds > 0
        assert report.shipped_bytes < report.naive_ship_bytes

    def test_per_shard_merges_go_through_the_shared_lock(self, scale4):
        """The race-safety probe: every worker merge acquires the tracker lock."""
        options = SHARDED.with_(shard_backend="thread")
        locked_sections = []
        shared = scale4.statistics
        real_lock = shared._lock

        class _CountingLock:
            def __enter__(self):
                real_lock.acquire()
                locked_sections.append(True)
                return self

            def __exit__(self, *exc_info):
                real_lock.release()

        shared._lock = _CountingLock()
        try:
            result = QueryEngine(scale4, options).run(PUBLISHING_TEACHERS_TEXT)
        finally:
            shared._lock = real_lock
        report = result.combination.shard_report
        assert report.scanned > 1
        # one reset at run start + one merge per dispatched shard, at least
        assert len(locked_sections) >= 1 + report.scanned


# ------------------------------------------------------------------- explain


class TestExplain:
    def test_analyze_shows_per_shard_paths_and_reducer_sizes(self, scale4):
        report = QueryEngine(scale4, SHARDED).explain(
            PUBLISHING_TEACHERS_TEXT, analyze=True
        )
        assert "execution: sharded parallel" in report
        assert "sharded execution: hash(e_ref) %" in report
        assert "bytes shipped" in report
        assert "shard 0:" in report
        assert "reducer rounds" in report

    def test_unsharded_analyze_is_unchanged(self, scale4):
        report = QueryEngine(scale4, DYADIC.with_(sharded_execution=False)).explain(
            PUBLISHING_TEACHERS_TEXT, analyze=True
        )
        assert "sharded" not in report.replace("sharded execution", "")
        assert "execution: streaming pipeline" in report


# ------------------------------------------------------------------- service layer


class TestServiceLayer:
    def test_prepared_sharded_plans_are_cached_and_equivalent(self, scale4):
        connection = connect(scale4)
        service = connection.service
        first = service.prepare(PUBLISHING_TEACHERS_TEXT, options=SHARDED)
        again = service.prepare(PUBLISHING_TEACHERS_TEXT, options=SHARDED)
        assert again is first
        expected = execute_naive(scale4, PUBLISHING_TEACHERS_TEXT)
        for _ in range(2):  # second execution reuses the collection memo
            result = first.execute()
            assert sorted(r.values for r in result.relation) == sorted(
                r.values for r in expected
            )
        connection.close()

    def test_catalog_change_invalidates_sharded_plans(self, scale4):
        connection = connect(scale4)
        service = connection.service
        before = service.prepare(PUBLISHING_TEACHERS_TEXT, options=SHARDED)
        scale4.create_index("employees", "enr")
        try:
            after = service.prepare(PUBLISHING_TEACHERS_TEXT, options=SHARDED)
            assert after is not before
            after.execute()
        finally:
            scale4.drop_index("employees", "enr")
            connection.close()
