"""Unit tests for the naive (ground truth) evaluator."""

import pytest

from repro.calculus import builder as q
from repro.calculus.typecheck import TypeChecker
from repro.engine.naive import evaluate_formula, evaluate_selection_naive, operand_value, range_elements
from repro.engine.result import result_schema_for
from repro.errors import EvaluationError
from repro.workloads.queries import example_21


def resolve(figure1, selection):
    return TypeChecker.for_database(figure1).resolve(selection)


class TestOperands:
    def test_constant_operand(self, figure1):
        assert operand_value(q.const(3), {}) == 3

    def test_field_operand(self, figure1):
        employee = figure1.relation("employees")[1]
        assert operand_value(q.field("e", "enr"), {"e": employee}) == 1

    def test_unbound_variable_raises(self, figure1):
        with pytest.raises(EvaluationError):
            operand_value(q.field("e", "enr"), {})


class TestRangeElements:
    def test_full_range(self, figure1):
        records = list(range_elements(figure1, q.range_("employees"), "e"))
        assert len(records) == len(figure1.relation("employees"))

    def test_restricted_range(self, figure1):
        restricted = q.range_("courses", q.le(("c", "clevel"), "sophomore"))
        resolved = resolve(
            figure1,
            q.selection([("c", "ctitle")], [q.each("c", restricted)], q.eq(("c", "cnr"), ("c", "cnr"))),
        )
        records = list(range_elements(figure1, resolved.bindings[0].range, "c"))
        assert records
        assert all(r.clevel.label in ("freshman", "sophomore") for r in records)

    def test_scans_are_counted(self, figure1):
        figure1.reset_statistics()
        list(range_elements(figure1, q.range_("papers"), "p"))
        assert figure1.statistics.scans("papers") == 1


class TestFormulaEvaluation:
    def test_monadic_comparison(self, figure1):
        resolved = resolve(
            figure1,
            q.selection([("e", "ename")], [("e", "employees")], q.eq(("e", "estatus"), "professor")),
        )
        employees = figure1.relation("employees")
        professors = [e for e in employees if e.estatus.label == "professor"]
        others = [e for e in employees if e.estatus.label != "professor"]
        assert evaluate_formula(resolved.formula, {"e": professors[0]}, figure1)
        assert not evaluate_formula(resolved.formula, {"e": others[0]}, figure1)

    def test_quantifier_short_circuit(self, figure1):
        formula = q.some("t", "timetable", q.eq(("t", "tenr"), ("e", "enr")))
        employees = figure1.relation("employees")
        teaching = {t.tenr for t in figure1.relation("timetable")}
        teacher = next(e for e in employees if e.enr in teaching)
        idle = [e for e in employees if e.enr not in teaching]
        assert evaluate_formula(formula, {"e": teacher}, figure1)
        if idle:
            assert not evaluate_formula(formula, {"e": idle[0]}, figure1)

    def test_universal_quantifier(self, figure1):
        formula = q.all_("p", "papers", q.ne(("p", "penr"), ("e", "enr")))
        employees = figure1.relation("employees")
        authors = {p.penr for p in figure1.relation("papers")}
        author = next(e for e in employees if e.enr in authors)
        non_author = next(e for e in employees if e.enr not in authors)
        assert not evaluate_formula(formula, {"e": author}, figure1)
        assert evaluate_formula(formula, {"e": non_author}, figure1)


class TestSelectionEvaluation:
    def test_result_schema_uses_column_names_and_types(self, figure1):
        resolved = resolve(figure1, example_21())
        schema = result_schema_for(resolved, figure1)
        assert schema.field_names == ("ename",)

    def test_alias_in_result_schema(self, figure1):
        selection = q.selection(
            [q.column("e", "ename", alias="who")], [("e", "employees")], q.eq(("e", "enr"), 1)
        )
        schema = result_schema_for(resolve(figure1, selection), figure1)
        assert schema.field_names == ("who",)

    def test_duplicate_output_names_are_disambiguated(self, figure1):
        selection = q.selection(
            [("e", "ename"), ("e", "ename")], [("e", "employees")], q.eq(("e", "enr"), 1)
        )
        schema = result_schema_for(resolve(figure1, selection), figure1)
        assert schema.field_names == ("ename", "ename_2")

    def test_monadic_query_results(self, figure1):
        resolved = resolve(
            figure1,
            q.selection([("e", "enr")], [("e", "employees")], q.eq(("e", "estatus"), "professor")),
        )
        result = evaluate_selection_naive(resolved, figure1)
        expected = {e.enr for e in figure1.relation("employees") if e.estatus.label == "professor"}
        assert {r.enr for r in result} == expected

    def test_duplicate_projection_values_are_eliminated(self, figure1):
        resolved = resolve(
            figure1,
            q.selection([("e", "estatus")], [("e", "employees")], q.eq(("e", "enr"), ("e", "enr"))),
        )
        result = evaluate_selection_naive(resolved, figure1)
        distinct = {e.estatus for e in figure1.relation("employees")}
        assert len(result) == len(distinct)

    def test_multi_variable_query(self, figure1):
        resolved = resolve(
            figure1,
            q.selection(
                [("e", "ename"), ("c", "cnr")],
                [("e", "employees"), ("c", "courses")],
                q.some(
                    "t",
                    "timetable",
                    q.and_(q.eq(("t", "tenr"), ("e", "enr")), q.eq(("t", "tcnr"), ("c", "cnr"))),
                ),
            ),
        )
        result = evaluate_selection_naive(resolved, figure1)
        assert len(result) > 0
        timetable_pairs = {(t.tenr, t.tcnr) for t in figure1.relation("timetable")}
        employees = {e.enr: e.ename for e in figure1.relation("employees")}
        expected = {(employees[enr], cnr) for enr, cnr in timetable_pairs if enr in employees}
        assert {(r.ename, r.cnr) for r in result} == expected

    def test_running_query_known_answer(self, figure1):
        """Cross-check the running query against an independent Python reimplementation."""
        resolved = resolve(figure1, example_21())
        result = evaluate_selection_naive(resolved, figure1)

        employees = figure1.relation("employees").elements()
        papers = figure1.relation("papers").elements()
        courses = figure1.relation("courses").elements()
        timetable = figure1.relation("timetable").elements()
        expected = set()
        for e in employees:
            if e.estatus.label != "professor":
                continue
            no_1977 = all(p.pyear != 1977 or e.enr != p.penr for p in papers)
            low = any(
                c.clevel.ordinal <= 1
                and any(c.cnr == t.tcnr and e.enr == t.tenr for t in timetable)
                for c in courses
            )
            if no_1977 or low:
                expected.add(e.ename)
        assert {r.ename for r in result} == expected
