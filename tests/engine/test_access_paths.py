"""Unit tests for the cost-based access-path selector and its execution.

Covers the selector's decision rule (probe / pruned scan / scan), the
late-binding contract (the chosen path is structural, the probe value comes
from the bound plan), freshness across mutations (incrementally maintained
indexes keep prepared queries exact without any rebuild), and the EXPLAIN
surfaces.
"""

from __future__ import annotations

import pytest

from repro import QueryEngine, StrategyOptions, connect, execute_naive
from repro.calculus import builder as q
from repro.engine.access import (
    PROBE,
    PRUNED_SCAN,
    SCAN,
    iter_access,
    select_access_path,
)
from repro.workloads.university import build_university_database


@pytest.fixture(params=("memory", "paged"))
def backend(request) -> str:
    return request.param


@pytest.fixture
def database(backend):
    return build_university_database(scale=2, paged=(backend == "paged"))


def _range(relation: str, restriction):
    from repro.calculus.ast import RangeExpr

    return RangeExpr(relation, restriction)


ALL = StrategyOptions.all_strategies()


class TestSelector:
    def test_unrestricted_range_scans(self, database):
        path = select_access_path(database, "e", _range("employees", None), ALL)
        assert path.kind == SCAN

    def test_flag_off_scans(self, database):
        database.create_index("employees", "enr")
        path = select_access_path(
            database,
            "e",
            _range("employees", q.eq(("e", "enr"), 3)),
            ALL.with_(use_index_paths=False),
        )
        assert path.kind == SCAN

    def test_hash_index_probes_equality(self, database):
        database.create_index("employees", "enr")
        path = select_access_path(
            database, "e", _range("employees", q.eq(("e", "enr"), 3)), ALL
        )
        assert path.kind == PROBE
        assert path.index_name == "ind_employees_enr"
        assert path.residual is None

    def test_hash_index_refuses_range_operator(self, database, backend):
        database.create_index("employees", "enr")
        path = select_access_path(
            database, "e", _range("employees", q.comp(("e", "enr"), "<", 3)), ALL
        )
        # No sub-linear hash probe for "<": paged databases fall back to the
        # zone-map pruned scan, in-memory ones to the plain scan.
        assert path.kind == (PRUNED_SCAN if backend == "paged" else SCAN)

    def test_sorted_index_probes_range_operator(self, database):
        database.create_index("papers", "pyear", operator="<=")
        path = select_access_path(
            database, "p", _range("papers", q.comp(("p", "pyear"), "<=", 1977)), ALL
        )
        assert path.kind == PROBE
        assert path.index_name == "sorted_papers_pyear"

    def test_swapped_operand_orientation(self, database):
        database.create_index("employees", "enr")
        path = select_access_path(
            database, "e", _range("employees", q.comp(1977, "=", ("e", "enr"))), ALL
        )
        assert path.kind == PROBE

    def test_residual_conjunct_survives(self, database):
        database.create_index("employees", "enr")
        restriction = q.and_(
            q.eq(("e", "enr"), 3), q.eq(("e", "estatus"), "professor")
        )
        path = select_access_path(database, "e", _range("employees", restriction), ALL)
        assert path.kind == PROBE
        assert path.residual is not None
        rows = list(iter_access(database, path, "e"))
        expected = [
            record
            for record in database.relation("employees").elements()
            if record["enr"] == 3 and str(record["estatus"]) == "professor"
        ]
        assert [record for _, record in rows] == expected

    def test_probe_enumerates_exactly_the_range(self, database):
        database.create_index("employees", "enr")
        path = select_access_path(
            database, "e", _range("employees", q.eq(("e", "enr"), 3)), ALL
        )
        rows = [record for _, record in iter_access(database, path, "e")]
        assert [record["enr"] for record in rows] == [3]
        assert database.statistics.index_probes > 0


class TestQueriesThroughIndexPaths:
    POINT = "[<e.ename> OF EACH e IN employees : (e.enr = $enr)]"

    def test_point_query_skips_the_scan(self, database):
        database.create_index("employees", "enr")
        service = connect(database).service
        prepared = service.prepare(self.POINT)
        result = prepared.execute({"enr": 5})
        assert result.statistics["relations"]["employees"]["scans"] == 0
        assert result.statistics["index_probes"] > 0
        assert "probe ind_employees_enr" in result.access_paths["e"]

    def test_late_binding_probes_fresh_value_per_execution(self, database):
        database.create_index("employees", "enr")
        service = connect(database).service
        prepared = service.prepare(self.POINT)
        engine = QueryEngine(database)
        for enr in (1, 5, 9):
            got = prepared.execute({"enr": enr}).relation
            expected = engine.run(
                f"[<e.ename> OF EACH e IN employees : (e.enr = {enr})]"
            ).relation
            assert sorted(r.values for r in got) == sorted(r.values for r in expected)

    def test_mutations_keep_prepared_results_fresh_without_rebuild(self, database):
        """Insert/delete after prepare: the incrementally maintained index
        answers the next execution exactly — no refresh_indexes needed."""
        database.create_index("employees", "enr")
        service = connect(database).service
        prepared = service.prepare(self.POINT)
        assert len(prepared.execute({"enr": 999}).relation) == 0
        employees = database.relation("employees")
        employees.insert({"enr": 999, "ename": "Newcomer", "estatus": "professor"})
        assert len(prepared.execute({"enr": 999}).relation) == 1
        employees.delete_key(999)
        assert len(prepared.execute({"enr": 999}).relation) == 0

    def test_derived_predicate_inner_range_probes(self, database):
        """A Strategy 4 value-list build over a restricted inner range uses
        the index instead of scanning the inner relation.

        Executed through the service (deferred Lemma 1 adaptation) so the
        compile-time emptiness check does not scan papers either: execution
        must not touch the inner relation beyond the probed matches.
        """
        database.create_index("papers", "pyear")
        text = (
            "[<e.ename> OF EACH e IN employees: "
            "SOME p IN [EACH p IN papers: (p.pyear = 1977)] (p.penr = e.enr)]"
        )
        result = connect(database).service.execute(text)
        assert result.statistics["relations"]["papers"]["scans"] == 0
        assert result.statistics["index_probes"] > 0
        expected = execute_naive(database, text)
        assert result.relation == expected

    def test_zone_map_pruning_skips_pages_on_paged_backend(self, backend, database):
        result = QueryEngine(database).run(
            "[<c.ctitle> OF EACH c IN courses : (c.cnr <= 2)]"
        )
        expected = execute_naive(
            database, "[<c.ctitle> OF EACH c IN courses : (c.cnr <= 2)]"
        )
        assert result.relation == expected
        if backend == "paged":
            assert "zone-map pruned scan" in result.access_paths["c"]
        else:
            assert result.statistics["pages_skipped"] == 0

    def test_probe_demoted_when_relation_is_shared_scanned_anyway(self, database):
        """Two variables over one relation, only one probe-able: under
        Strategy 1 the relation is scanned in full for the other variable,
        so probing would only add cost — the probe rides the shared scan."""
        database.create_index("employees", "enr")
        text = (
            "[<e.ename, m.ename> OF EACH e IN employees, EACH m IN employees : "
            "(e.enr = 5) AND (e.estatus = m.estatus)]"
        )
        result = QueryEngine(database).run(text)
        assert result.relation == execute_naive(database, text)
        assert "shared scan already required" in result.access_paths["e"]
        assert result.statistics["relations"]["employees"]["scans"] == 1
        # Without Strategy 1 each structure enumerates on its own, so the
        # probe is worth it again and stays a probe.
        sequential = QueryEngine(
            database, StrategyOptions.only(use_index_paths=True, extended_ranges=True)
        ).run(text)
        assert sequential.relation == execute_naive(database, text)
        assert "probe ind_employees_enr" in sequential.access_paths["e"]

    def test_false_matrix_reports_no_access_paths(self, database):
        # Lemma 1: SOME over an empty relation collapses the matrix to FALSE.
        database.relation("papers").clear()
        result = QueryEngine(database).run(
            "[<e.ename> OF EACH e IN employees : SOME p IN papers ((p.penr = e.enr))]"
        )
        assert len(result.relation) == 0
        assert result.access_paths == {}

    def test_unoptimised_engine_keeps_scanning(self, database):
        database.create_index("employees", "enr")
        result = QueryEngine(database, StrategyOptions.none()).run(
            "[<e.ename> OF EACH e IN employees : (e.enr = 5)]"
        )
        assert result.statistics["relations"]["employees"]["scans"] >= 1
        expected = execute_naive(
            database, "[<e.ename> OF EACH e IN employees : (e.enr = 5)]"
        )
        assert result.relation == expected


class TestExplainSurfaces:
    def test_static_explain_shows_chosen_path(self, database):
        database.create_index("employees", "enr")
        report = QueryEngine(database).explain(
            "[<e.ename> OF EACH e IN employees : (e.enr = 5)]"
        )
        assert "access paths:" in report
        assert "probe ind_employees_enr" in report

    def test_analyze_shows_counters(self, database):
        database.create_index("employees", "enr")
        report = QueryEngine(database).explain(
            "[<e.ename> OF EACH e IN employees : (e.enr = 5)]", analyze=True
        )
        assert "access paths (analyzed):" in report
        assert "index probes=" in report
        assert "pages skipped=" in report

    def test_unbound_parameter_shown_in_static_explain(self, database):
        database.create_index("employees", "enr")
        service = connect(database).service
        prepared = service.prepare("[<e.ename> OF EACH e IN employees : (e.enr = $x)]")
        from repro.engine.explain import explain_prepared

        report = explain_prepared(prepared.plan, database, prepared.options)
        assert "$x" in report and "probe ind_employees_enr" in report

    def test_prepared_query_exposes_access_paths(self, database):
        database.create_index("employees", "enr")
        service = connect(database).service
        prepared = service.prepare("[<e.ename> OF EACH e IN employees : (e.enr = $x)]")
        paths = prepared.access_paths()
        assert "probe ind_employees_enr" in paths["e"]
        assert "$x" in paths["e"]
        scan_plan = service.prepare(
            "[<e.ename> OF EACH e IN employees : (e.enr = $x)]",
            StrategyOptions().with_(use_index_paths=False),
        )
        assert scan_plan.access_paths()["e"] == "scan employees"


class TestStatisticsCounters:
    def test_new_counters_snapshot_and_reset(self, database):
        stats = database.statistics
        stats.record_index_maintenance(3)
        stats.record_pages_skipped(2)
        snapshot = stats.as_dict()
        assert snapshot["index_maintenance_ops"] == 3
        assert snapshot["pages_skipped"] == 2
        stats.reset()
        assert stats.index_maintenance_ops == 0
        assert stats.pages_skipped == 0
        assert stats.index_probes == 0
