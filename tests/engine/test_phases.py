"""Unit tests for the collection, combination and construction phases.

These reproduce the behaviour shown in Examples 3.2, 4.1-4.3 of the paper:
which intermediate structures the collection phase builds, how many times each
relation is scanned with and without Strategy 1, and how Strategy 2 suppresses
separate single lists.
"""

import pytest

from repro.calculus.typecheck import TypeChecker
from repro.config import StrategyOptions
from repro.engine.collection import CollectionPhase, ExtendedRangeEmptyError
from repro.engine.combination import CombinationPhase
from repro.engine.construction import ConstructionPhase
from repro.transform.pipeline import prepare_query
from repro.workloads.queries import example_21, teaches_low_level
from repro.calculus import builder as q


def prepare(database, selection, options):
    resolved = TypeChecker.for_database(database).resolve(selection)
    return resolved, prepare_query(resolved, database, options, resolve=False)


class TestCollectionPhaseStructures:
    def test_example_32_structures(self, figure1):
        """The nested sub-expression of Example 3.2 yields sl_csoph and ij_c_t."""
        options = StrategyOptions.only(parallel_collection=True)
        selection = q.selection(
            [("c", "ctitle")],
            [("c", "courses")],
            q.and_(
                q.le(("c", "clevel"), "sophomore"),
                q.some("t", "timetable", q.eq(("c", "cnr"), ("t", "tcnr"))),
            ),
        )
        resolved, prepared = prepare(figure1, selection, options)
        collection = CollectionPhase(prepared, figure1, options).run()
        structures = collection.conjunctions[0]
        kinds = sorted(len(s.variables) for s in structures)
        assert kinds == [1, 2]  # one single list + one indirect join
        single = next(s for s in structures if len(s.variables) == 1)
        indirect = next(s for s in structures if len(s.variables) == 2)
        courses = figure1.relation("courses")
        low_level = {c.cnr for c in courses if c.clevel.ordinal <= 1}
        assert {ref.deref().cnr for (ref,) in single.rows} == low_level
        # Every indirect-join pair satisfies the dyadic term c.cnr = t.tcnr.
        for row in indirect.rows:
            by_var = dict(zip(indirect.variables, row))
            assert by_var["c"].deref().cnr == by_var["t"].deref().tcnr

    def test_strategy2_folds_monadic_terms_into_the_indirect_join(self, figure1):
        selection = q.selection(
            [("c", "ctitle")],
            [("c", "courses")],
            q.and_(
                q.le(("c", "clevel"), "sophomore"),
                q.some("t", "timetable", q.eq(("c", "cnr"), ("t", "tcnr"))),
            ),
        )
        with_s2 = StrategyOptions.only(parallel_collection=True, one_step_nested=True)
        resolved, prepared = prepare(figure1, selection, with_s2)
        collection = CollectionPhase(prepared, figure1, with_s2).run()
        structures = collection.conjunctions[0]
        # The monadic term was folded: only the indirect join remains.
        assert len(structures) == 1
        assert len(structures[0].variables) == 2
        # And the indirect join only holds low-level courses.
        low_level = {c.cnr for c in figure1.relation("courses") if c.clevel.ordinal <= 1}
        assert all(pair[1].deref().cnr in low_level or pair[0].deref().cnr in low_level
                   for pair in structures[0].rows)

    def test_range_refs_cover_every_variable(self, figure1):
        options = StrategyOptions.none()
        resolved, prepared = prepare(figure1, example_21(), options)
        collection = CollectionPhase(prepared, figure1, options).run()
        assert set(collection.range_refs) == {"e", "p", "c", "t"}
        assert len(collection.range_refs["e"]) == len(figure1.relation("employees"))


class TestScanCounts:
    """Example 4.1 / 4.3: Strategy 1 reads each relation no more than once."""

    def test_parallel_collection_scans_each_relation_once(self, figure1):
        options = StrategyOptions.only(parallel_collection=True)
        resolved, prepared = prepare(figure1, example_21(), options)
        figure1.reset_statistics()
        CollectionPhase(prepared, figure1, options).run()
        for relation in ("employees", "papers", "courses", "timetable"):
            assert figure1.statistics.scans(relation) == 1, relation

    def test_unoptimised_collection_scans_relations_repeatedly(self, figure1):
        options = StrategyOptions.none()
        resolved, prepared = prepare(figure1, example_21(), options)
        figure1.reset_statistics()
        CollectionPhase(prepared, figure1, options).run()
        assert figure1.statistics.scans("employees") > 1
        total_without = figure1.statistics.total_scans()

        options = StrategyOptions.only(parallel_collection=True)
        resolved, prepared = prepare(figure1, example_21(), options)
        figure1.reset_statistics()
        CollectionPhase(prepared, figure1, options).run()
        assert figure1.statistics.total_scans() < total_without

    def test_permanent_index_skips_index_build_scan(self, figure1):
        options = StrategyOptions.only(parallel_collection=False, use_permanent_indexes=True)
        figure1.create_index("timetable", "tcnr")
        figure1.create_index("timetable", "tenr")
        figure1.create_index("papers", "penr")
        selection = teaches_low_level()
        resolved, prepared = prepare(figure1, selection, options)
        figure1.reset_statistics()
        CollectionPhase(prepared, figure1, options).run()
        # Without permanent indexes the timetable would be scanned for the
        # index build; with them it is not scanned at all in this query
        # (timetable only appears as the build side of one dyadic term).
        assert figure1.statistics.scans("timetable") <= 1


class TestStrategy4Execution:
    def test_derived_evaluators_reproduce_example_47_sets(self, figure1):
        options = StrategyOptions()
        resolved, prepared = prepare(figure1, example_21(), options)
        collection = CollectionPhase(prepared, figure1, options).run()
        # All conjunction structures are single lists over e only.
        for structures in collection.conjunctions:
            assert structures is not None
            for structure in structures:
                assert structure.variables == ("e",)

    def test_extended_range_empty_raises(self, figure1):
        options = StrategyOptions()
        selection = q.selection(
            [("e", "ename")],
            [q.each("e", q.range_("employees", q.eq(("e", "enr"), 9999)))],
            q.eq(("e", "estatus"), "professor"),
        )
        resolved, prepared = prepare(figure1, selection, options)
        with pytest.raises(ExtendedRangeEmptyError):
            CollectionPhase(prepared, figure1, options).run()


class TestCombinationAndConstruction:
    def test_combination_sizes_shrink_with_optimization(self, figure1):
        unopt = StrategyOptions.none()
        resolved, prepared = prepare(figure1, example_21(), unopt)
        collection = CollectionPhase(prepared, figure1, unopt).run()
        combination = CombinationPhase(prepared, figure1, collection).run()
        unopt_peak = combination.peak_tuples

        opt = StrategyOptions()
        resolved, prepared_opt = prepare(figure1, example_21(), opt)
        collection_opt = CollectionPhase(prepared_opt, figure1, opt).run()
        combination_opt = CombinationPhase(prepared_opt, figure1, collection_opt).run()
        assert combination_opt.peak_tuples < unopt_peak

    def test_construction_dereferences_and_projects(self, figure1):
        options = StrategyOptions()
        resolved, prepared = prepare(figure1, example_21(), options)
        collection = CollectionPhase(prepared, figure1, options).run()
        combination = CombinationPhase(prepared, figure1, collection).run()
        result = ConstructionPhase(resolved, figure1).run(combination)
        assert result.schema.field_names == ("ename",)
        from repro.engine.naive import evaluate_selection_naive

        assert result == evaluate_selection_naive(resolved, figure1)

    def test_union_size_reported(self, figure1):
        options = StrategyOptions.none()
        resolved, prepared = prepare(figure1, example_21(), options)
        collection = CollectionPhase(prepared, figure1, options).run()
        combination = CombinationPhase(prepared, figure1, collection).run()
        assert combination.union_size >= combination.after_quantifiers_size
        assert len(combination.conjunction_sizes) == 3
