"""Unit tests for EXPLAIN output and the calculus pretty printer."""

import pytest

from repro import QueryEngine, StrategyOptions
from repro.calculus import builder as q
from repro.calculus.ast import TRUE
from repro.calculus.printer import format_formula, format_operand, format_range, format_selection
from repro.errors import CalculusError
from repro.types.scalar import Enumeration
from repro.workloads.queries import EXAMPLE_21_TEXT


class TestPrinter:
    def test_operands(self):
        status = Enumeration("statustype", ("student", "professor"))
        assert format_operand(q.field("e", "ename")) == "e.ename"
        assert format_operand(q.const(1977)) == "1977"
        assert format_operand(q.const("Highman   ")) == "'Highman'"
        assert format_operand(q.const(status.professor)) == "professor"
        assert format_operand(q.const(True)) == "true"
        with pytest.raises(CalculusError):
            format_operand(object())

    def test_comparison_always_parenthesised(self):
        assert format_formula(q.eq(("e", "enr"), 1)) == "(e.enr = 1)"

    def test_connectives_and_not(self):
        formula = q.and_(q.eq(("e", "enr"), 1), q.not_(q.eq(("e", "enr"), 2)))
        text = format_formula(formula)
        assert "AND" in text and "NOT" in text

    def test_quantifier_with_extended_range(self):
        formula = q.all_(
            "p", q.range_("papers", q.eq(("p", "pyear"), 1977)), q.ne(("p", "penr"), 1)
        )
        text = format_formula(formula)
        assert text.startswith("ALL p IN [EACH p IN papers:")

    def test_range_formatting(self):
        assert format_range(q.range_("papers"), "p") == "papers"
        assert "EACH c IN courses" in format_range(
            q.range_("courses", q.le(("c", "clevel"), 1)), "c"
        )

    def test_selection_with_alias(self):
        selection = q.selection(
            [q.column("e", "ename", alias="name")], [("e", "employees")], TRUE
        )
        assert "AS name" in format_selection(selection)

    def test_bool_constants(self):
        assert format_formula(TRUE) == "true"


class TestExplain:
    def test_explain_full_optimizer(self, engine):
        text = engine.explain(EXAMPLE_21_TEXT)
        assert "derived" in text                 # Strategy 4 value lists
        assert "quantifier prefix: (empty)" in text
        assert "relation cardinalities" in text

    def test_explain_no_strategies_shows_prefix_and_join_terms(self, figure1):
        engine = QueryEngine(figure1, StrategyOptions.none())
        text = engine.explain(EXAMPLE_21_TEXT)
        assert "ALL p IN papers" in text
        assert "join term" in text
        assert "conjunction 3" in text

    def test_explain_constant_matrix(self, figure1):
        figure1.relation("papers").clear()
        engine = QueryEngine(figure1)
        text = engine.explain(
            "[<e.ename> OF EACH e IN employees: SOME p IN papers ((p.pyear = 1977))]"
        )
        assert "matrix is constant FALSE" in text

    def test_explain_lists_extended_ranges(self, engine):
        text = engine.explain(
            EXAMPLE_21_TEXT, StrategyOptions.only(extended_ranges=True)
        )
        assert "[EACH e IN employees" in text
        assert "[EACH p IN papers" in text
