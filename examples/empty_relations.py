"""Lemma 1 in action: what happens when a range relation is empty.

Run with::

    python examples/empty_relations.py

Reproduces the discussion after Example 2.2: the standard form assumes
non-empty ranges, so with ``papers = []`` the query must be adapted at runtime
— otherwise it would return the names of *all* employees instead of just the
professors.  Also demonstrates the engine's Strategy 3 fallback when an
*extended* range turns out to be empty.
"""

from repro import QueryEngine, StrategyOptions, build_university_database, execute_naive
from repro.workloads.queries import EXAMPLE_21_TEXT


def main() -> None:
    database = build_university_database(scale=2)
    engine = QueryEngine(database)

    print("With a populated papers relation:")
    populated = engine.run(EXAMPLE_21_TEXT)
    print(f"  result: {sorted(r.ename.strip() for r in populated.relation)}")
    print()

    # Empty the papers relation: ALL p IN papers (...) becomes vacuously true.
    database.relation("papers").clear()
    print("After papers := [] (the empty relation):")
    adapted = engine.run(EXAMPLE_21_TEXT)
    professors = sorted(
        e.ename.strip() for e in database.relation("employees") if e.estatus.label == "professor"
    )
    print(f"  adapted result:    {sorted(r.ename.strip() for r in adapted.relation)}")
    print(f"  professors:        {professors}")
    print("  transformation trace:")
    for step in adapted.prepared.trace.steps:
        print(f"    - {step.name}: {step.detail}")
    assert sorted(r.ename.strip() for r in adapted.relation) == professors
    assert adapted.relation == execute_naive(database, EXAMPLE_21_TEXT)
    print()

    # Strategy 3 fallback: extend the range of e to professors, then demote
    # everyone so the extended range is empty at runtime.
    print("Strategy 3 fallback when an extended range is empty:")
    database2 = build_university_database(scale=2)
    employees = database2.relation("employees")
    employees.assign(
        record.replace(estatus="assistant") if record.estatus.label == "professor" else record
        for record in employees.elements()
    )
    engine2 = QueryEngine(database2, StrategyOptions.all_strategies())
    result = engine2.run(EXAMPLE_21_TEXT)
    print(f"  professors in database: 0")
    print(f"  result size: {len(result.relation)}")
    print(f"  used Strategy 3 fallback: {result.used_strategy3_fallback}")
    assert result.relation == execute_naive(database2, EXAMPLE_21_TEXT)
    print("  (the engine re-planned the query without extended ranges and still")
    print("   returned the correct — empty — answer)")


if __name__ == "__main__":
    main()
