"""The bibliographic workload end to end: generate, ingest DBLP XML, analyse.

Run with::

    python examples/citation_analysis.py

Walks the second domain's whole surface: build a Zipf-skewed bibliographic
database, load a DBLP-style XML fragment on top of it through the public
connect/session API (entity decoding, duplicate-key last-write-wins), create
the standard indexes, and run the citation query library — co-author chains,
"who cites whom", per-venue universal quantification, self-citation
detection — with ``explain`` showing how the histogram statistics see the
skew.
"""

from repro import connect
from repro.workloads.bibliography import (
    bibliography_named_queries,
    build_bibliography_database,
    create_standard_indexes,
    load_dblp_xml,
)

#: A miniature DBLP fragment in the real feed's shape: a DOCTYPE declaring
#: character entities, article/inproceedings records, a duplicate key whose
#: later record must win, and a citation into the fragment.
DBLP_FRAGMENT = """<?xml version="1.0" encoding="ISO-8859-1"?>
<!DOCTYPE dblp [
  <!ENTITY uuml "&#252;">
  <!ENTITY auml "&#228;">
]>
<dblp>
<article mdate="2023-09-20" key="journals/pvldb/SchmittKAMM23">
<author>Daniel Schmitt</author>
<author orcid="0000-0001-8301-3512">Thomas H&uuml;tter</author>
<author>Christine Sch&auml;ler</author>
<title>A Structural Join for Document Stores.</title>
<year>2023</year>
<journal>Proc. VLDB Endow.</journal>
</article>
<inproceedings mdate="2022-05-01" key="conf/sigmod/HutterA22">
<author>Thomas H&uuml;tter</author>
<author>Nikolaus Augsten</author>
<title>Tree Similarity Joins.</title>
<year>2022</year>
<booktitle>SIGMOD Conference</booktitle>
<cite>journals/pvldb/SchmittKAMM23</cite>
</inproceedings>
<article mdate="2024-01-05" key="journals/pvldb/SchmittKAMM23">
<author>Daniel Schmitt</author>
<author>Thomas H&uuml;tter</author>
<author>Christine Sch&auml;ler</author>
<title>A Structural Join for Document Stores (extended).</title>
<year>2023</year>
<journal>Proc. VLDB Endow.</journal>
</article>
</dblp>"""


def main() -> None:
    # 1. The generator: Zipf-skewed, correlated, deterministic.
    database = build_bibliography_database(scale=2)
    create_standard_indexes(database)
    print("Generated bibliography (scale 2):")
    for name, count in sorted(database.cardinalities().items()):
        print(f"  {name:12s} {count}")
    print()

    with connect(database) as connection:
        # 2. The ingest path: DBLP XML through the public session API.
        report = load_dblp_xml(DBLP_FRAGMENT, connection)
        print("Ingested the DBLP fragment:")
        print(f"  records {report.records}, new papers {report.inserted}, "
              f"duplicates resolved {report.duplicate_keys} "
              f"(last write wins, {report.updated} updated)")
        print(f"  entities decoded {report.entities_decoded}, "
              f"citations resolved {report.citations_created}")
        cursor = connection.execute(
            "[<a.aname> OF EACH a IN authors: "
            " SOME w IN authorship (SOME p IN papers "
            "  ((w.wanr = a.anr) AND (w.wpnr = p.pnr) AND (p.pyear = 2023)))]"
        )
        names = sorted(row.aname.strip() for row in cursor.fetchall())
        print(f"  2023 authors from the feed include: {names}")
        print()

        # 3. The citation query library over the combined contents.
        print("Citation query library:")
        for name, query in bibliography_named_queries().items():
            rows = connection.execute(query).fetchall()
            print(f"  {name:20s} -> {len(rows)} rows")
        print()

        # 4. What the optimizer sees: the Zipf head in the statistics.
        summary = database.table_statistics("citations").summary("cdst")
        if summary.hot:
            key, count = max(summary.hot.items(), key=lambda item: item[1])
            share = 100.0 * count / max(summary.total, 1)
            print(f"Hot citation target: paper {key} holds {share:.0f}% of all edges")
        cursor = connection.execute(
            "[<a.ptitle> OF EACH a IN papers: "
            " SOME c1 IN citations (SOME c2 IN citations "
            "  ((c1.cdst = c2.cdst) AND (c1.csrc = a.pnr) AND (c2.csrc <> a.pnr)))]"
        )
        print(f"Co-citation pairs found: {len(cursor.fetchall())}")


if __name__ == "__main__":
    main()
