"""Sessions and transactions: begin, mutate, roll back — nothing happened.

Run with::

    PYTHONPATH=src python examples/transactions.py

PASCAL/R embeds the database in a host program that mutates relations inside
a controlled scope.  This walkthrough shows the session layer reproducing
that scope over the Figure 1 database:

1. ``connect()`` opens the thread-safe connection front door;
2. a context-managed session journals every insert/delete/assign/clear;
3. queries inside the transaction see the uncommitted writes;
4. ``rollback()`` restores relations, permanent indexes and cached-plan
   validity exactly (an exception inside the ``with`` block rolls back too);
5. a clean ``with`` exit commits.
"""

from repro import connect, build_university_database
from repro.workloads.queries import PROFESSORS_TEXT

YOUNG_PROFESSOR = {"enr": 990, "ename": "Noether", "estatus": "professor"}


def professor_names(cursor_owner) -> list[str]:
    cursor = cursor_owner.execute(PROFESSORS_TEXT)
    return sorted(record.ename.strip() for record in cursor)


def main() -> None:
    database = build_university_database(scale=1)
    database.create_index("employees", "enr")  # maintained through rollback too
    connection = connect(database)
    employees = database.relation("employees")

    print("professors before any transaction:")
    print(f"  {professor_names(connection)}")
    print()

    # -- a transaction that rolls back -----------------------------------------
    session = connection.session()
    with session:
        employees.insert(YOUNG_PROFESSOR)
        print("inside the transaction (uncommitted insert is visible):")
        print(f"  {professor_names(session)}")
        print(f"  journal: {len(session.journal)} operation(s) "
              f"over {session.journal.touched_relations()}")
        session.rollback()
    print("after rollback (exactly the pre-begin state, index included):")
    print(f"  {professor_names(connection)}")
    index = database.index_for("employees", "enr")
    print(f"  index probe for enr=990: {index.probe(990)}")
    print()

    # -- an exception rolls back automatically ----------------------------------
    try:
        with connection.session():
            employees.clear()
            raise RuntimeError("changed my mind")
    except RuntimeError:
        pass
    print("after an exception inside the with-block:")
    print(f"  employees still has {len(employees)} elements")
    print()

    # -- a clean exit commits ----------------------------------------------------
    with connection.session():
        employees.insert(YOUNG_PROFESSOR)
    print("after a committed transaction:")
    print(f"  {professor_names(connection)}")

    connection.close()


if __name__ == "__main__":
    main()
