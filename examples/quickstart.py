"""Quickstart: declare the Figure 1 database, ask the paper's running query.

Run with::

    PYTHONPATH=src python examples/quickstart.py

This walks through the library's main entry points: building the sample
database of Figure 1, opening a connection with ``repro.connect``, streaming
a PASCAL/R-style selection through a cursor, inspecting the transformation
trace (Examples 2.2, 4.5, 4.7), and comparing against the naive ground-truth
interpreter.
"""

from repro import build_university_database, connect, execute_naive
from repro.workloads.queries import EXAMPLE_21_TEXT


def main() -> None:
    # 1. The Figure 1 database: employees, papers, courses, timetable.
    database = build_university_database(scale=2, seed=1982)
    print("Database contents:")
    for relation in database.relations():
        print(f"  {relation.name:10s} {len(relation):3d} elements")
    print()
    print("Employees:")
    print(database.relation("employees").show(limit=8))
    print()

    # 2. The paper's running query (Example 2.1): professors who did not
    #    publish in 1977 or who currently teach a low-level course.
    print("Query (Example 2.1):")
    print(EXAMPLE_21_TEXT.strip())
    print()

    # 3. Open a connection (the full PASCAL/R optimizer by default) and
    #    stream the result through a cursor: each fetch pulls rows off the
    #    live operator pipeline.
    connection = connect(database)
    cursor = connection.execute(EXAMPLE_21_TEXT)
    print("Result (streamed fetch-by-fetch):")
    for record in cursor:
        print(f"  {record.ename.strip()}")
    print()

    # 4. What did the optimizer do?  (Examples 2.2, 4.5 and 4.7 of the paper.)
    result = cursor.result
    print("Transformation trace:")
    print(result.prepared.trace.describe())
    print()
    print("Access statistics (scans per relation):")
    for name, counters in cursor.statistics["relations"].items():
        print(f"  {name:10s} scans={counters['scans']} elements={counters['elements_read']}")
    print(f"  intermediate reference tuples: {cursor.statistics['intermediate_tuples']}")
    print()

    # 5. Cross-check against the direct interpretation of the calculus.
    ground_truth = execute_naive(database, EXAMPLE_21_TEXT)
    assert result.relation == ground_truth
    print("Ground-truth check: phase-structured result matches the naive evaluator.")
    connection.close()


if __name__ == "__main__":
    main()
