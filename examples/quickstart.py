"""Quickstart: declare the Figure 1 database, ask the paper's running query.

Run with::

    python examples/quickstart.py

This walks through the library's main entry points: building the sample
database of Figure 1, executing a PASCAL/R-style selection with the full
optimizer, inspecting the transformation trace (Examples 2.2, 4.5, 4.7), and
comparing against the naive ground-truth interpreter.
"""

from repro import QueryEngine, StrategyOptions, build_university_database, execute_naive
from repro.workloads.queries import EXAMPLE_21_TEXT


def main() -> None:
    # 1. The Figure 1 database: employees, papers, courses, timetable.
    database = build_university_database(scale=2, seed=1982)
    print("Database contents:")
    for relation in database.relations():
        print(f"  {relation.name:10s} {len(relation):3d} elements")
    print()
    print("Employees:")
    print(database.relation("employees").show(limit=8))
    print()

    # 2. The paper's running query (Example 2.1): professors who did not
    #    publish in 1977 or who currently teach a low-level course.
    print("Query (Example 2.1):")
    print(EXAMPLE_21_TEXT.strip())
    print()

    # 3. Execute it with the full PASCAL/R optimizer.
    engine = QueryEngine(database, StrategyOptions.all_strategies())
    result = engine.execute(EXAMPLE_21_TEXT)
    print("Result:")
    print(result.relation.show())
    print()

    # 4. What did the optimizer do?  (Examples 2.2, 4.5 and 4.7 of the paper.)
    print("Transformation trace:")
    print(result.prepared.trace.describe())
    print()
    print("Access statistics (scans per relation):")
    for name, counters in result.statistics["relations"].items():
        print(f"  {name:10s} scans={counters['scans']} elements={counters['elements_read']}")
    print(f"  intermediate reference tuples: {result.statistics['intermediate_tuples']}")
    print()

    # 5. Cross-check against the direct interpretation of the calculus.
    ground_truth = execute_naive(database, EXAMPLE_21_TEXT)
    assert result.relation == ground_truth
    print("Ground-truth check: phase-structured result matches the naive evaluator.")


if __name__ == "__main__":
    main()
