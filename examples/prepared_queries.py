"""The prepared-query service layer: prepare once, execute many times.

Run with::

    PYTHONPATH=src python examples/prepared_queries.py

Shows the full service lifecycle on the parameterized running query:

1. ``repro.connect`` opens the connection owning the service and plan cache;
2. ``Connection.prepare`` compiles the text once — parse, type check,
   Lemma 1, standard form, Strategies 3-4 — and caches the plan;
3. ``PreparedQuery.execute`` late-binds parameter values and runs only the
   collection / combination / construction phases (``Cursor.execute`` with
   the same bindings streams instead);
4. repeated ``prepare`` calls hit the LRU plan cache (watch the hit/miss
   counters);
5. a catalog change bumps the database's schema version and invalidates
   the cached plans;
6. ``Cursor.executemany`` batches bindings through the service's batch
   executor, sharing collection-phase relation scans across queries.
"""

from repro import build_university_database, connect
from repro.workloads.queries import (
    RUNNING_QUERY_PARAM_TEXT,
    STATUS_PARAM_TEXT,
    TEACHES_AT_LEVEL_PARAM_TEXT,
)


def main() -> None:
    database = build_university_database(scale=2)
    connection = connect(database)
    service = connection.service

    print("The parameterized running query:")
    print(RUNNING_QUERY_PARAM_TEXT.strip())
    print()

    # -- prepare once ---------------------------------------------------------
    prepared = connection.prepare(RUNNING_QUERY_PARAM_TEXT)
    print(f"prepared: parameters {prepared.parameter_names}")
    print("transformations recorded at prepare time:")
    print(prepared.trace.describe())
    print()

    # -- execute with different bindings --------------------------------------
    # A streaming cursor late-binds the values into the cached plan; the
    # same text hits the plan cache on every execution.
    for values in (
        {"status": "professor", "year": 1977, "level": "sophomore"},
        {"status": "student", "year": 1975, "level": "senior"},
        {"status": "professor", "year": 1982, "level": "freshman"},
    ):
        cursor = connection.execute(RUNNING_QUERY_PARAM_TEXT, values)
        names = sorted(record.ename.strip() for record in cursor)
        print(f"  {values} -> {cursor.rowcount} element(s): {names}")
    print()

    # -- the plan cache --------------------------------------------------------
    service.prepare(RUNNING_QUERY_PARAM_TEXT)   # same text: cache hit
    service.prepare("  " + RUNNING_QUERY_PARAM_TEXT + "  {a comment}")  # same tokens
    print(f"plan cache after re-preparing twice: {service.cache_info()}")

    database.create_index("employees", "enr")   # catalog change...
    service.prepare(RUNNING_QUERY_PARAM_TEXT)   # ...so this recompiles
    print(f"plan cache after a catalog change:   {service.cache_info()}")
    print()

    # -- batch execution -------------------------------------------------------
    batch = service.execute_batch(
        [
            (STATUS_PARAM_TEXT, {"status": "professor"}),
            (STATUS_PARAM_TEXT, {"status": "student"}),
            (TEACHES_AT_LEVEL_PARAM_TEXT, {"level": "sophomore"}),
            (RUNNING_QUERY_PARAM_TEXT, {"status": "professor", "year": 1977, "level": "sophomore"}),
        ]
    )
    print("batched execution (shared collection scans):")
    for result in batch:
        print(f"  {len(result)} element(s)")
    scans = {
        name: counters["scans"]
        for name, counters in batch[-1].statistics["relations"].items()
    }
    print(f"  relation scans for the whole batch: {scans}")
    print()

    # -- executemany: the cursor face of the batch executor --------------------
    cursor = connection.executemany(
        STATUS_PARAM_TEXT, [{"status": "professor"}, {"status": "student"}]
    )
    print(f"executemany over two bindings: {cursor.rowcount} row(s) total")
    connection.close()


if __name__ == "__main__":
    main()
