"""Build your own PASCAL/R database and query it: a small library catalogue.

Run with::

    python examples/custom_database.py

Shows the full public API outside the paper's university schema: declaring
types and relations, maintaining a permanent index (Example 3.1), using
selected variables and references, and writing queries with both the textual
syntax and the builder API — including a universally quantified query
("readers who have borrowed every available copy of some book").
"""

from repro import Database, QueryEngine, StrategyOptions
from repro.calculus import builder as q
from repro.types.scalar import CharArray, Enumeration, Subrange


def build_catalogue() -> Database:
    genre = Enumeration("genretype", ("logic", "databases", "languages", "systems"))
    database = Database("library")

    books = database.create_relation(
        "books",
        [("bnr", Subrange(1, 999)), ("btitle", CharArray(30)), ("bgenre", genre)],
        key=["bnr"],
    )
    readers = database.create_relation(
        "readers",
        [("rnr", Subrange(1, 999)), ("rname", CharArray(20))],
        key=["rnr"],
    )
    loans = database.create_relation(
        "loans",
        [("lrnr", Subrange(1, 999)), ("lbnr", Subrange(1, 999)), ("lweek", Subrange(1, 52))],
        key=["lrnr", "lbnr", "lweek"],
    )

    books.insert_all(
        [
            {"bnr": 1, "btitle": "Mathematical Logic", "bgenre": "logic"},
            {"bnr": 2, "btitle": "A Relational Model of Data", "bgenre": "databases"},
            {"bnr": 3, "btitle": "PASCAL/R Report", "bgenre": "languages"},
            {"bnr": 4, "btitle": "Access Path Selection", "bgenre": "databases"},
        ]
    )
    readers.insert_all(
        [
            {"rnr": 10, "rname": "Jarke"},
            {"rnr": 11, "rname": "Schmidt"},
            {"rnr": 12, "rname": "Mall"},
        ]
    )
    loans.insert_all(
        [
            {"lrnr": 10, "lbnr": 2, "lweek": 5},
            {"lrnr": 10, "lbnr": 4, "lweek": 6},
            {"lrnr": 11, "lbnr": 3, "lweek": 6},
            {"lrnr": 11, "lbnr": 2, "lweek": 7},
            {"lrnr": 12, "lbnr": 1, "lweek": 8},
        ]
    )
    # Example 3.1: a permanent index maintained alongside the relation.
    database.create_index("loans", "lbnr")
    return database


def main() -> None:
    database = build_catalogue()
    print(database.describe())
    print()

    # Selected variables and references (Section 3.1).
    books = database.relation("books")
    pascal_report = books[3]
    reference = books.ref(3)
    print(f"selected variable books[3]: {pascal_report.btitle.strip()}")
    print(f"reference @books[3]:        {reference!r} -> {reference.deref().btitle.strip()}")
    print()

    engine = QueryEngine(database, StrategyOptions.all_strategies())

    # A textual query: readers who borrowed a databases book.
    text_query = """
    [<r.rname> OF EACH r IN readers:
        SOME l IN loans ((l.lrnr = r.rnr)
            AND SOME b IN [EACH b IN books: (b.bgenre = databases)]
                ((b.bnr = l.lbnr)))]
    """
    result = engine.run(text_query)
    print("Readers who borrowed a databases book:")
    print(result.relation.show())
    print()

    # The same query through the builder API, plus a universal one: readers
    # who borrowed *every* databases book.
    every_db_book = q.selection(
        columns=[("r", "rname")],
        each=[("r", "readers")],
        where=q.all_(
            "b",
            q.range_("books", q.eq(("b", "bgenre"), "databases")),
            q.some(
                "l",
                "loans",
                q.and_(q.eq(("l", "lrnr"), ("r", "rnr")), q.eq(("l", "lbnr"), ("b", "bnr"))),
            ),
        ),
    )
    completionists = engine.run(every_db_book)
    print("Readers who borrowed every databases book:")
    print(completionists.relation.show())
    print()
    print("How the optimizer evaluated it:")
    print(completionists.prepared.trace.describe())


if __name__ == "__main__":
    main()
