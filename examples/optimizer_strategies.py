"""Walk through the paper's four optimization strategies on the running query.

Run with::

    python examples/optimizer_strategies.py

For each strategy configuration the script prints the EXPLAIN output (the
transformed query structure) and the access profile, reproducing the
progression of the paper's Section 4: Example 4.3 (parallel collection),
Example 4.2 (one-step nested evaluation), Example 4.5 (extended ranges) and
Example 4.7 (collection-phase quantifiers).
"""

from repro import QueryEngine, StrategyOptions, build_university_database
from repro.bench.harness import compare_strategies, format_table
from repro.workloads.queries import EXAMPLE_21_TEXT

CONFIGURATIONS = {
    "Section 3.3 — no strategies": StrategyOptions.none(),
    "Example 4.3 — Strategy 1 (parallel collection)": StrategyOptions.only(
        parallel_collection=True
    ),
    "Example 4.2 — Strategies 1+2 (one-step nested)": StrategyOptions.only(
        parallel_collection=True, one_step_nested=True
    ),
    "Example 4.5 — Strategies 1-3 (extended ranges)": StrategyOptions.only(
        parallel_collection=True, one_step_nested=True, extended_ranges=True
    ),
    "Example 4.7 — Strategies 1-4 (full optimizer)": StrategyOptions.all_strategies(),
}


def main() -> None:
    database = build_university_database(scale=2)
    engine = QueryEngine(database)

    print("The running query (Example 2.1):")
    print(EXAMPLE_21_TEXT.strip())

    for label, options in CONFIGURATIONS.items():
        print()
        print("=" * len(label))
        print(label)
        print("=" * len(label))
        print(engine.explain(EXAMPLE_21_TEXT, options))

    print()
    print("Access profile comparison:")
    measurements = compare_strategies(database, EXAMPLE_21_TEXT, CONFIGURATIONS, include_naive=True)
    print(format_table(measurements))

    results = {label: engine.run(EXAMPLE_21_TEXT, options=options).relation
               for label, options in CONFIGURATIONS.items()}
    first = next(iter(results.values()))
    assert all(relation == first for relation in results.values())
    print()
    print("All configurations return the same result relation "
          f"({len(first)} element(s)) — only the work performed differs.")


if __name__ == "__main__":
    main()
