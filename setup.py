"""Setup shim so `pip install -e .` works without the `wheel` package.

The offline environment lacks the wheel backend needed by PEP 660 editable
installs; this legacy shim lets `python setup.py develop` / pip's fallback
path succeed.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
